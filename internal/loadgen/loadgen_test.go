package loadgen_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/units"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// serveFile starts a fragserve front-end over a data-mode file store
// and returns its base URL.
func serveFile(t *testing.T, cfg server.Config) string {
	t.Helper()
	store, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(256*units.MB), blob.WithDiskMode(disk.DataMode))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts.URL
}

// TestLoadgenRampedRun is the acceptance pin: the generator sustains
// ≥256 concurrent clients driven by workload.Source streams, records
// wall-clock per-op latency, and emits a schema-valid report with one
// "k=N" phase per ramp step.
func TestLoadgenRampedRun(t *testing.T) {
	url := serveFile(t, server.Config{})
	report := obs.NewRunReport()
	cfg := loadgen.Config{
		URL:           url,
		Ramp:          []int{64, 256},
		StepDuration:  200 * time.Millisecond,
		Objects:       512,
		Dist:          workload.Constant{Size: 4 * units.KB},
		ReadsPerWrite: 1,
		Seed:          1,
		Report:        report,
	}
	res, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loaded != 512 {
		t.Fatalf("loaded %d objects, want 512", res.Loaded)
	}
	if len(res.Steps) != 2 || res.Steps[0].Clients != 64 || res.Steps[1].Clients != 256 {
		t.Fatalf("steps = %+v, want k=64 then k=256", res.Steps)
	}
	for _, step := range res.Steps {
		if step.Ops == 0 {
			t.Fatalf("step k=%d completed no ops", step.Clients)
		}
		if step.Errors != 0 {
			t.Fatalf("step k=%d: %d errors against an unloaded server", step.Clients, step.Errors)
		}
		if step.Snapshot.Unit != obs.UnitWall {
			t.Fatalf("step k=%d snapshot unit = %q, want wall_ns", step.Clients, step.Snapshot.Unit)
		}
		for _, name := range []string{"loadgen.replace", "loadgen.read"} {
			h := step.Snapshot.Histograms[name]
			if h == nil || h.Count == 0 {
				t.Fatalf("step k=%d recorded no %s latencies", step.Clients, name)
			}
			if h.Quantile(0.999) < h.Quantile(0.5) {
				t.Fatalf("%s p999 %d < p50 %d", name, h.Quantile(0.999), h.Quantile(0.5))
			}
		}
	}
	// The report must carry one wall-tagged phase per ramp step.
	if len(report.Experiments) != 1 {
		t.Fatalf("report has %d experiments, want 1", len(report.Experiments))
	}
	exp := report.Experiments[0]
	if len(exp.Phases) != 2 {
		t.Fatalf("report has %d phases, want 2", len(exp.Phases))
	}
	for i, want := range []string{"k=64", "k=256"} {
		p := exp.Phases[i]
		if p.Name != want {
			t.Fatalf("phase %d = %q, want %q", i, p.Name, want)
		}
		if p.TimeUnit != obs.UnitWall {
			t.Fatalf("phase %q time unit = %q, want wall_ns", p.Name, p.TimeUnit)
		}
		if len(p.Histograms) == 0 {
			t.Fatalf("phase %q has no histograms", p.Name)
		}
	}
}

// TestLoadgenShedVisibility pins the overload contract from the
// client's side: against a server with one in-flight slot and no
// queue, concurrent clients see typed ErrOverloaded sheds, counted —
// never retried, never crashing the run.
func TestLoadgenShedVisibility(t *testing.T) {
	url := serveFile(t, server.Config{MaxInFlight: 1, MaxQueue: 0})
	// Payload writes must be large enough that the server's body read
	// outruns the socket buffer and parks the handler goroutine INSIDE
	// its admission slot — on a single-CPU host that yield is what lets
	// competing requests arrive and overlap. 4 MB does it; small
	// metadata ops run the whole handler without yielding and never
	// collide.
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		URL:           url,
		Ramp:          []int{16},
		StepDuration:  500 * time.Millisecond,
		Objects:       16,
		Dist:          workload.Constant{Size: 4 * units.MB},
		ReadsPerWrite: 1,
		Payload:       true,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	step := res.Steps[0]
	if step.Shed == 0 {
		t.Fatal("16 payload clients against a 1-slot server shed nothing")
	}
	if step.Errors < step.Shed {
		t.Fatalf("errors %d < sheds %d", step.Errors, step.Shed)
	}
	// Sheds surface as typed per-op error counters in the snapshot.
	var typed int64
	for name, v := range step.Snapshot.Counters {
		if name == "loadgen.replace.err.overloaded" || name == "loadgen.read.err.overloaded" {
			typed += v
		}
	}
	if typed == 0 {
		t.Fatal("no overloaded error counters recorded")
	}
}

// TestLoadgenConfigValidation refuses unusable configs with
// ErrBadOption before touching the network.
func TestLoadgenConfigValidation(t *testing.T) {
	good := loadgen.Config{
		URL:          "http://127.0.0.1:1",
		Ramp:         []int{1},
		StepDuration: time.Second,
		Objects:      1,
		Dist:         workload.Constant{Size: 4 * units.KB},
	}
	cases := []struct {
		name string
		mut  func(*loadgen.Config)
	}{
		{"EmptyURL", func(c *loadgen.Config) { c.URL = "" }},
		{"EmptyRamp", func(c *loadgen.Config) { c.Ramp = nil }},
		{"ZeroStep", func(c *loadgen.Config) { c.Ramp = []int{0} }},
		{"ZeroDuration", func(c *loadgen.Config) { c.StepDuration = 0 }},
		{"NoObjects", func(c *loadgen.Config) { c.Objects = 0 }},
		{"NilDist", func(c *loadgen.Config) { c.Dist = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mut(&cfg)
			if _, err := loadgen.Run(context.Background(), cfg); !errors.Is(err, blob.ErrBadOption) {
				t.Fatalf("err = %v, want ErrBadOption", err)
			}
		})
	}
	// The one good config fails on dial, not validation: nothing
	// listens on port 1.
	if _, err := loadgen.Run(context.Background(), good); err == nil || errors.Is(err, blob.ErrBadOption) {
		t.Fatalf("dial to dead port = %v, want non-option error", err)
	}
}

// TestLoadgenDeterministicStreams pins the seed contract: two runs
// with the same seed against fresh servers prepopulate identical
// keyspaces (op ordering is timing-dependent, the op STREAMS are not).
// One client only: with k>1 the shared byte budget's exhaustion point
// depends on which client's uniform size draw lands last, so the
// loaded COUNT is timing-dependent even though every stream is seeded.
func TestLoadgenDeterministicStreams(t *testing.T) {
	load := func() int {
		url := serveFile(t, server.Config{})
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			URL:          url,
			Ramp:         []int{1},
			StepDuration: 50 * time.Millisecond,
			Objects:      32,
			Dist:         workload.Uniform{Min: 4 * units.KB, Max: 64 * units.KB},
			Seed:         7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Loaded
	}
	a, b := load(), load()
	if a != b {
		t.Fatalf("same seed loaded %d then %d objects", a, b)
	}
	if a == 0 {
		t.Fatal(fmt.Sprintf("loaded %d objects", a))
	}
}
