package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestLeakedDetectsBlockedGoroutine proves the detector sees a
// deliberately parked goroutine and stops seeing it once released.
func TestLeakedDetectsBlockedGoroutine(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-release
	}()

	sees := func() bool {
		for _, s := range leaked() {
			if strings.Contains(s, "TestLeakedDetectsBlockedGoroutine") {
				return true
			}
		}
		return false
	}
	found := false
	for range 200 {
		if sees() {
			found = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !found {
		t.Fatal("leaked() never reported the parked goroutine")
	}

	close(release)
	<-done
	for range 200 {
		if !sees() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("leaked() still reports the goroutine after it exited")
}

// TestBenignFiltersDriver pins that the test driver's own stack is not
// reported as a leak.
func TestBenignFiltersDriver(t *testing.T) {
	if !benign("goroutine 1 [chan receive]:\ntesting.(*M).Run(...)") {
		t.Fatal("the testing driver's goroutine must be benign")
	}
	if benign("goroutine 7 [chan receive]:\nrepro/internal/core.(*FileStore).loop(...)") {
		t.Fatal("an application goroutine must not be benign")
	}
}
