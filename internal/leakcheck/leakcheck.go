// Package leakcheck fails a test binary that exits with goroutines
// still running — a dependency-free stand-in for go.uber.org/goleak.
// The simulation's background machinery (group-commit pipelines,
// compactor loops, executor streams) all promise to drain on
// Stop/Close; a test that leaks one of those goroutines hides a missing
// shutdown path that a soak run eventually pays for.
//
// Wire it into a package's TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// After the tests pass, Main snapshots all goroutine stacks, filters
// the runtime's and test driver's own goroutines, and retries briefly
// so goroutines already unwinding (closed channels, canceled contexts)
// get off stage. Anything still running fails the binary with the
// offending stacks.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// maxWait bounds how long Main waits for in-flight goroutines to
// unwind before declaring them leaked.
const maxWait = 2 * time.Second

// Main runs the package's tests and then fails the binary if any
// non-benign goroutine survives them.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if bad := waitForDrain(); len(bad) > 0 {
			fmt.Fprintf(os.Stderr,
				"leakcheck: %d goroutine(s) still running after tests:\n\n%s\n",
				len(bad), strings.Join(bad, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// waitForDrain polls the goroutine set until it is clean or maxWait
// elapses, returning the surviving stacks.
func waitForDrain() []string {
	//fragvet:ignore vclockpurity test-harness deadline: leak detection waits on real goroutine scheduling, not simulated time
	deadline := time.Now().Add(maxWait)
	for {
		bad := leaked()
		//fragvet:ignore vclockpurity test-harness deadline check on real time
		if len(bad) == 0 || time.Now().After(deadline) {
			return bad
		}
		//fragvet:ignore vclockpurity real backoff while goroutines unwind
		time.Sleep(10 * time.Millisecond)
	}
}

// leaked returns the stacks of goroutines that are neither the
// runtime's nor the test driver's.
func leaked() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var bad []string
	for _, s := range strings.Split(string(buf[:n]), "\n\n") {
		s = strings.TrimSpace(s)
		if s == "" || benign(s) {
			continue
		}
		bad = append(bad, s)
	}
	return bad
}

// benign reports whether stack belongs to the runtime, the testing
// driver, or leakcheck itself.
func benign(stack string) bool {
	for _, marker := range []string{
		"leakcheck.leaked",       // the snapshotting goroutine (us)
		"testing.(*M).Run",       // the test driver, if sampled elsewhere
		"testing.(*T).Run",       // parked parents of parallel subtests
		"testing.runTests",       // driver plumbing
		"testing.runFuzzing",     // fuzz workers parked by the driver
		"runtime.goexit0",        // goroutines mid-teardown
		"runtime/pprof.",         // profiler writers
		"runtime.ReadTrace",      // execution tracer
		"signal.signal_recv",     // os/signal watcher
		"runtime.ensureSigM",     // signal mask goroutine
		"runtime.gcBgMarkWorker", // GC workers
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
