package disk

import (
	"bytes"
	"testing"

	"repro/internal/extent"
	"repro/internal/units"
	"repro/internal/vclock"
)

func testDrive(capacity int64, mode Mode) *Drive {
	return New(DefaultGeometry(capacity), vclock.New(), mode)
}

func TestSequentialNoSeek(t *testing.T) {
	d := testDrive(1*units.GB, MetadataMode)
	d.WriteRun(extent.Run{Start: 0, Len: 16}, 1, 0, nil)
	d.WriteRun(extent.Run{Start: 16, Len: 16}, 1, 16, nil)
	if s := d.Stats(); s.Seeks != 0 {
		t.Fatalf("sequential writes incurred %d seeks", s.Seeks)
	}
	d.WriteRun(extent.Run{Start: 1000, Len: 16}, 1, 32, nil)
	if s := d.Stats(); s.Seeks != 1 {
		t.Fatalf("discontiguous write incurred %d seeks, want 1", s.Seeks)
	}
}

func TestSeekCostMonotonic(t *testing.T) {
	d := testDrive(10*units.GB, MetadataMode)
	short := d.seekTime(10)
	mid := d.seekTime(d.geo.Clusters / 4)
	long := d.seekTime(d.geo.Clusters - 1)
	if !(short < mid && mid < long) {
		t.Fatalf("seek curve not monotonic: %d %d %d", short, mid, long)
	}
	if d.seekTime(0) != 0 {
		t.Fatal("zero-distance seek should be free")
	}
	if d.seekTime(-100) != d.seekTime(100) {
		t.Fatal("seek time not symmetric")
	}
}

func TestZonedBandwidth(t *testing.T) {
	d := testDrive(10*units.GB, MetadataMode)
	outer := d.SequentialBandwidthMBps(0)
	inner := d.SequentialBandwidthMBps(d.geo.Clusters - 1)
	if outer <= inner {
		t.Fatalf("outer zone (%g) not faster than inner (%g)", outer, inner)
	}
	if outer > d.geo.OuterMBps+0.01 || inner < d.geo.InnerMBps-0.01 {
		t.Fatalf("bandwidth outside configured range: %g..%g", inner, outer)
	}
}

func TestFragmentationSlowsReads(t *testing.T) {
	// Reading N clusters as one run must be far faster than as N scattered
	// fragments — the core mechanism behind every figure in the paper.
	geo := DefaultGeometry(10 * units.GB)
	contig := New(geo, vclock.New(), MetadataMode)
	w := vclock.StartWatch(contig.Clock())
	contig.ReadRun(extent.Run{Start: 0, Len: 2560}) // 10MB contiguous
	contigTime := w.Seconds()

	frag := New(geo, vclock.New(), MetadataMode)
	w = vclock.StartWatch(frag.Clock())
	for i := 0; i < 40; i++ { // 40 fragments of 256KB, scattered
		start := int64(i) * (geo.Clusters / 41)
		frag.ReadRun(extent.Run{Start: start, Len: 64})
	}
	fragTime := w.Seconds()

	if fragTime < 3*contigTime {
		t.Fatalf("40-fragment read only %.2fx slower than contiguous (%.4fs vs %.4fs)",
			fragTime/contigTime, fragTime, contigTime)
	}
}

func TestThroughputPlausible(t *testing.T) {
	// Contiguous outer-band streaming should be near the configured outer
	// bandwidth; the paper's drive streams tens of MB/s.
	d := testDrive(40*units.GB, MetadataMode)
	w := vclock.StartWatch(d.Clock())
	var total int64
	for c := int64(0); c < 256*256; c += 256 { // 256MB sequential
		d.ReadRun(extent.Run{Start: c, Len: 256})
		total += 256 * d.Geometry().ClusterSize
	}
	mbps := units.MBps(total, w.Seconds())
	if mbps < 40 || mbps > 70 {
		t.Fatalf("sequential throughput %.1f MB/s outside plausible range", mbps)
	}
}

func TestDataModeRoundTrip(t *testing.T) {
	d := testDrive(1*units.GB, DataMode)
	cs := d.Geometry().ClusterSize
	payload := make([]byte, 3*cs)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	d.WriteRun(extent.Run{Start: 10, Len: 3}, 7, 0, payload)
	got := d.ReadRun(extent.Run{Start: 10, Len: 3})
	if !bytes.Equal(got, payload) {
		t.Fatal("DataMode read-back mismatch")
	}
	// Unwritten clusters read as zeros.
	zero := d.ReadRun(extent.Run{Start: 100, Len: 1})
	for _, b := range zero {
		if b != 0 {
			t.Fatal("unwritten cluster not zero")
		}
	}
}

func TestOwnerMap(t *testing.T) {
	d := testDrive(1*units.GB, MetadataMode)
	d.WriteRun(extent.Run{Start: 5, Len: 4}, 42, 100, nil)
	tag, seq := d.Owner(6)
	if tag != 42 || seq != 101 {
		t.Fatalf("Owner(6) = %d,%d; want 42,101", tag, seq)
	}
	d.ClearOwner(extent.Run{Start: 5, Len: 4})
	if tag, _ := d.Owner(6); tag != 0 {
		t.Fatalf("owner not cleared: %d", tag)
	}
	d.DisableOwnerMap()
	if d.HasOwnerMap() {
		t.Fatal("owner map still reported after disable")
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := testDrive(1*units.GB, MetadataMode)
	d.WriteRun(extent.Run{Start: 0, Len: 8}, 1, 0, nil)
	d.ReadRun(extent.Run{Start: 100, Len: 8})
	s := d.Stats()
	if s.Writes != 1 || s.Reads != 1 {
		t.Fatalf("ops: %+v", s)
	}
	if s.BytesWritten != 8*d.Geometry().ClusterSize || s.BytesRead != 8*d.Geometry().ClusterSize {
		t.Fatalf("bytes: %+v", s)
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := testDrive(1*units.GB, MetadataMode)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range run did not panic")
		}
	}()
	d.ReadRun(extent.Run{Start: d.Geometry().Clusters - 1, Len: 2})
}

func TestChargeCPUAdvancesClock(t *testing.T) {
	d := testDrive(1*units.GB, MetadataMode)
	before := d.Clock().Now()
	d.ChargeCPU(1000) // 1ms
	if got := d.Clock().Now() - before; got != 1_000_000 {
		t.Fatalf("ChargeCPU advanced %d ns, want 1e6", got)
	}
}
