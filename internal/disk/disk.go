// Package disk models a single rotating drive with zoned transfer rates,
// a seek-distance cost curve, and rotational latency, driven by a virtual
// clock.
//
// The model reproduces the two hardware properties the paper's results
// hinge on (§3.4, §5):
//
//   - every discontiguous fragment of an object costs a seek plus half a
//     rotation before data moves, so fragments/object translates directly
//     into lost throughput; and
//   - outer zones transfer faster than inner zones, which is why NTFS's
//     banded allocation starts at the outer band.
//
// Defaults approximate the paper's test drive (Table 1: Seagate 400 GB
// 7200 rpm SATA, ST3400832AS).
//
// The drive can optionally retain payload bytes (DataMode) for integrity
// tests, and an owner map tagging each cluster with the object that wrote
// it, which feeds the marker-based fragmentation scanner in package frag.
package disk

import (
	"fmt"
	"math"

	"repro/internal/extent"
	"repro/internal/units"
	"repro/internal/vclock"
)

// Mode selects how much state the drive retains besides timing.
type Mode int

const (
	// MetadataMode tracks timing and the owner map but drops payloads.
	MetadataMode Mode = iota
	// DataMode additionally retains payload bytes per cluster so reads
	// return exactly what was written. Use only with small volumes.
	DataMode
)

// Geometry describes the simulated drive.
type Geometry struct {
	ClusterSize int64 // bytes per cluster
	Clusters    int64 // total clusters on the volume

	// Transfer bandwidth in MB/s at the outermost and innermost zone;
	// intermediate clusters interpolate linearly, approximating the
	// 10-20 zone banding of real drives.
	OuterMBps float64
	InnerMBps float64

	// Seek curve: single-track seek and full-stroke seek, milliseconds.
	TrackToTrackMs float64
	FullStrokeMs   float64

	RPM int // spindle speed, for rotational latency

	// PerRequestCPUUs is the fixed host-side cost charged per request
	// (interrupt handling, driver path), microseconds.
	PerRequestCPUUs float64
}

// DefaultGeometry returns a drive approximating the paper's Table 1
// hardware with the given capacity in bytes.
func DefaultGeometry(capacity int64) Geometry {
	return Geometry{
		ClusterSize:     4 * units.KB,
		Clusters:        capacity / (4 * units.KB),
		OuterMBps:       64,
		InnerMBps:       34,
		TrackToTrackMs:  0.8,
		FullStrokeMs:    17,
		RPM:             7200,
		PerRequestCPUUs: 20,
	}
}

// Stats accumulates operation counters for one drive.
type Stats struct {
	Reads         int64
	Writes        int64
	Seeks         int64
	BytesRead     int64
	BytesWritten  int64
	SeekNanos     int64
	TransferNanos int64
}

// Drive is the simulated disk. It is not safe for concurrent use; the
// storage engines above it are single-threaded per volume, as the paper's
// workload was.
type Drive struct {
	geo   Geometry
	clock *vclock.Clock
	mode  Mode
	stats Stats

	headPos int64 // cluster under the head after the last request

	// owner[i] and seq[i] tag cluster i with the object that last wrote
	// it and that cluster's index within the object's byte stream. Tag 0
	// means unowned/metadata.
	owner []uint32
	seq   []uint32

	data map[int64][]byte // cluster -> payload, DataMode only

	noOwnerMap bool // set by WithoutOwnerMap before allocation
}

// Option customises drive construction.
type Option func(*Drive)

// WithoutOwnerMap skips allocating the owner map (8 bytes per cluster) —
// required for very large simulated volumes (the paper's 400 GB runs),
// at the cost of the marker-based fragmentation scanner.
func WithoutOwnerMap() Option {
	return func(d *Drive) { d.noOwnerMap = true }
}

// New creates a drive with the given geometry. By default the owner map
// is allocated (8 bytes/cluster); pass WithoutOwnerMap for very large
// volumes.
func New(geo Geometry, clock *vclock.Clock, mode Mode, opts ...Option) *Drive {
	if geo.Clusters <= 0 || geo.ClusterSize <= 0 {
		panic(fmt.Sprintf("disk: bad geometry %+v", geo))
	}
	d := &Drive{
		geo:   geo,
		clock: clock,
		mode:  mode,
	}
	for _, o := range opts {
		o(d)
	}
	if !d.noOwnerMap {
		d.owner = make([]uint32, geo.Clusters)
		d.seq = make([]uint32, geo.Clusters)
	}
	if mode == DataMode {
		d.data = make(map[int64][]byte)
	}
	return d
}

// DisableOwnerMap releases the owner map for metadata-only runs at very
// large volume sizes. The frag marker scanner cannot be used afterwards.
func (d *Drive) DisableOwnerMap() {
	d.owner = nil
	d.seq = nil
}

// Geometry returns the drive geometry.
func (d *Drive) Geometry() Geometry { return d.geo }

// Mode returns the drive's retention mode.
func (d *Drive) Mode() Mode { return d.mode }

// Clock returns the virtual clock the drive advances.
func (d *Drive) Clock() *vclock.Clock { return d.clock }

// Stats returns a copy of the accumulated counters.
func (d *Drive) Stats() Stats { return d.stats }

// ResetStats zeroes the counters (the clock is untouched).
func (d *Drive) ResetStats() { d.stats = Stats{} }

// Capacity returns the drive capacity in bytes.
func (d *Drive) Capacity() int64 { return d.geo.Clusters * d.geo.ClusterSize }

// seekTime returns nanoseconds to move the head dist clusters, using the
// standard concave square-root seek curve, plus average rotational latency.
func (d *Drive) seekTime(dist int64) int64 {
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	frac := math.Sqrt(float64(dist) / float64(d.geo.Clusters))
	ms := d.geo.TrackToTrackMs + (d.geo.FullStrokeMs-d.geo.TrackToTrackMs)*frac
	rotMs := 0.5 * 60000.0 / float64(d.geo.RPM)
	return int64((ms + rotMs) * 1e6)
}

// bandwidthAt returns bytes/ns at cluster c (linear zone interpolation).
func (d *Drive) bandwidthAt(c int64) float64 {
	frac := float64(c) / float64(d.geo.Clusters)
	mbps := d.geo.OuterMBps + (d.geo.InnerMBps-d.geo.OuterMBps)*frac
	return mbps * float64(units.MB) / 1e9
}

// transferTime returns nanoseconds to move r.Len clusters at the zone
// bandwidth of the run's midpoint.
func (d *Drive) transferTime(r extent.Run) int64 {
	bytes := float64(r.Len * d.geo.ClusterSize)
	bw := d.bandwidthAt(r.Start + r.Len/2)
	return int64(bytes / bw)
}

// charge advances the clock for a request at r, seeking if the head is not
// already positioned at r.Start. Seek, transfer, and per-request CPU are
// summed into ONE clock advance — the per-request total is unchanged, but
// with hundreds of streams each advance is a contended atomic add on the
// shared clock word, so one RMW per request instead of three matters.
func (d *Drive) charge(r extent.Run) {
	total := int64(d.geo.PerRequestCPUUs * 1e3)
	if r.Start != d.headPos {
		st := d.seekTime(r.Start - d.headPos)
		total += st
		d.stats.Seeks++
		d.stats.SeekNanos += st
	}
	tt := d.transferTime(r)
	total += tt
	d.stats.TransferNanos += tt
	d.clock.Advance(total)
	d.headPos = r.End()
}

func (d *Drive) checkRun(r extent.Run) {
	if r.Len <= 0 || r.Start < 0 || r.End() > d.geo.Clusters {
		panic(fmt.Sprintf("disk: run %v outside volume of %d clusters", r, d.geo.Clusters))
	}
}

// WriteRun writes the run, tagging it as owned by object tag with the
// object-relative cluster sequence beginning at seqStart. data, when
// non-nil in DataMode, must be exactly r.Len clusters long.
func (d *Drive) WriteRun(r extent.Run, tag uint32, seqStart int64, data []byte) {
	d.checkRun(r)
	d.charge(r)
	d.stats.Writes++
	d.stats.BytesWritten += r.Len * d.geo.ClusterSize
	if d.owner != nil {
		for i := int64(0); i < r.Len; i++ {
			d.owner[r.Start+i] = tag
			d.seq[r.Start+i] = uint32(seqStart + i)
		}
	}
	if d.mode == DataMode {
		if data != nil {
			if int64(len(data)) != r.Len*d.geo.ClusterSize {
				panic(fmt.Sprintf("disk: data length %d != run %v bytes", len(data), r))
			}
			for i := int64(0); i < r.Len; i++ {
				buf := make([]byte, d.geo.ClusterSize)
				copy(buf, data[i*d.geo.ClusterSize:(i+1)*d.geo.ClusterSize])
				d.data[r.Start+i] = buf
			}
		} else {
			for i := int64(0); i < r.Len; i++ {
				delete(d.data, r.Start+i)
			}
		}
	}
}

// ReadRun reads the run, charging seek and transfer time. In DataMode it
// returns the stored payload (zeros for never-written clusters); in
// MetadataMode it returns nil.
func (d *Drive) ReadRun(r extent.Run) []byte {
	d.checkRun(r)
	d.charge(r)
	d.stats.Reads++
	d.stats.BytesRead += r.Len * d.geo.ClusterSize
	if d.mode != DataMode {
		return nil
	}
	out := make([]byte, r.Len*d.geo.ClusterSize)
	for i := int64(0); i < r.Len; i++ {
		if b, ok := d.data[r.Start+i]; ok {
			copy(out[i*d.geo.ClusterSize:], b)
		}
	}
	return out
}

// ClearOwner untags a run (after deletion). No time is charged: deallocation
// is a metadata operation whose cost the filesystem/database layer models.
func (d *Drive) ClearOwner(r extent.Run) {
	d.checkRun(r)
	if d.owner == nil {
		return
	}
	for i := int64(0); i < r.Len; i++ {
		d.owner[r.Start+i] = 0
		d.seq[r.Start+i] = 0
	}
}

// Owner returns the tag and sequence recorded for cluster c.
func (d *Drive) Owner(c int64) (tag uint32, seq uint32) {
	if d.owner == nil || c < 0 || c >= d.geo.Clusters {
		return 0, 0
	}
	return d.owner[c], d.seq[c]
}

// HasOwnerMap reports whether the owner map is available for scanning.
func (d *Drive) HasOwnerMap() bool { return d.owner != nil }

// ChargeCPU advances the clock by the given microseconds of host CPU work.
// Storage engines use this for per-operation costs (file open, B-tree
// descent, page processing) that the paper's folklore discussion names.
func (d *Drive) ChargeCPU(us float64) {
	d.clock.Advance(int64(us * 1e3))
}

// SequentialBandwidthMBps reports the model's streaming bandwidth at the
// given cluster, for harness reporting (Table 1 analog).
func (d *Drive) SequentialBandwidthMBps(c int64) float64 {
	return d.bandwidthAt(c) * 1e9 / float64(units.MB)
}

// String summarises the drive for the Table 1 configuration report.
func (d *Drive) String() string {
	return fmt.Sprintf("simulated %s drive: %d x %s clusters, %g-%g MB/s zones, %g ms avg seek, %d rpm",
		units.FormatBytes(d.Capacity()), d.geo.Clusters, units.FormatBytes(d.geo.ClusterSize),
		d.geo.OuterMBps, d.geo.InnerMBps, (d.geo.TrackToTrackMs+d.geo.FullStrokeMs)/2, d.geo.RPM)
}
