package disk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/extent"
	"repro/internal/units"
	"repro/internal/vclock"
)

// Property: virtual time equals the sum of seek, transfer and per-request
// CPU components for any request sequence.
func TestQuickTimeDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clock := vclock.New()
		d := New(DefaultGeometry(1*units.GB), clock, MetadataMode)
		requests := rng.Intn(50) + 1
		for i := 0; i < requests; i++ {
			start := rng.Int63n(d.Geometry().Clusters - 64)
			length := rng.Int63n(63) + 1
			if rng.Intn(2) == 0 {
				d.ReadRun(extent.Run{Start: start, Len: length})
			} else {
				d.WriteRun(extent.Run{Start: start, Len: length}, 1, 0, nil)
			}
		}
		s := d.Stats()
		cpu := int64(float64(requests) * d.Geometry().PerRequestCPUUs * 1e3)
		return clock.Now() == s.SeekNanos+s.TransferNanos+cpu
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSeekLongerThanTransferForSmallRandomIO(t *testing.T) {
	// The regime behind every fragmentation penalty: for 4KB random I/O
	// the seek dominates the transfer.
	d := New(DefaultGeometry(10*units.GB), vclock.New(), MetadataMode)
	d.ReadRun(extent.Run{Start: d.Geometry().Clusters / 2, Len: 1})
	s := d.Stats()
	if s.SeekNanos <= s.TransferNanos {
		t.Fatalf("seek %dns not dominant over transfer %dns", s.SeekNanos, s.TransferNanos)
	}
}

func TestWithoutOwnerMapOption(t *testing.T) {
	d := New(DefaultGeometry(1*units.GB), vclock.New(), MetadataMode, WithoutOwnerMap())
	if d.HasOwnerMap() {
		t.Fatal("owner map allocated despite option")
	}
	// Writes must still work (and not panic).
	d.WriteRun(extent.Run{Start: 0, Len: 4}, 9, 0, nil)
	if tag, _ := d.Owner(0); tag != 0 {
		t.Fatalf("Owner on disabled map returned %d", tag)
	}
}

func TestHeadPositionCarriesAcrossRequests(t *testing.T) {
	d := New(DefaultGeometry(1*units.GB), vclock.New(), MetadataMode)
	d.ReadRun(extent.Run{Start: 100, Len: 10})
	// Head is now at 110: reading there is seek-free.
	before := d.Stats().Seeks
	d.ReadRun(extent.Run{Start: 110, Len: 10})
	if d.Stats().Seeks != before {
		t.Fatal("sequential follow-on read incurred a seek")
	}
	// Reading backwards seeks.
	d.ReadRun(extent.Run{Start: 100, Len: 5})
	if d.Stats().Seeks != before+1 {
		t.Fatal("backward read did not seek")
	}
}

func TestDataModeOverwrite(t *testing.T) {
	d := New(DefaultGeometry(64*units.MB), vclock.New(), DataMode)
	cs := d.Geometry().ClusterSize
	first := make([]byte, cs)
	for i := range first {
		first[i] = 1
	}
	second := make([]byte, cs)
	for i := range second {
		second[i] = 2
	}
	d.WriteRun(extent.Run{Start: 5, Len: 1}, 1, 0, first)
	d.WriteRun(extent.Run{Start: 5, Len: 1}, 2, 0, second)
	got := d.ReadRun(extent.Run{Start: 5, Len: 1})
	if got[0] != 2 {
		t.Fatal("overwrite not visible")
	}
	// nil data clears retained payload.
	d.WriteRun(extent.Run{Start: 5, Len: 1}, 3, 0, nil)
	got = d.ReadRun(extent.Run{Start: 5, Len: 1})
	if got[0] != 0 {
		t.Fatal("nil write did not clear payload")
	}
}

func TestGeometryStringer(t *testing.T) {
	d := New(DefaultGeometry(40*units.GB), vclock.New(), MetadataMode, WithoutOwnerMap())
	if s := d.String(); s == "" {
		t.Fatal("empty String")
	}
}
