// Package blob defines the v2 large-object store API: a streaming
// get/put abstraction (the paper's §4 "simple get/put storage
// primitives") with typed sentinel errors, context cancellation, and
// safe-replace semantics, implemented by two interchangeable backends —
// filesystem-backed and database-backed — in package core.
//
// Compared with the v1 whole-buffer Repository interface, objects are
// written through streaming Writers whose appends flow to the backend in
// request-sized chunks (subsuming the old WriteRequestSize plumbing) and
// read through Readers supporting whole-object and ranged reads. Every
// failure wraps one of the sentinels in errors.go, stores are safe for
// concurrent callers (per-key striped locking), and configuration uses
// functional options (options.go) instead of per-backend option structs.
package blob

import (
	"context"

	"repro/internal/extent"
	"repro/internal/vclock"
)

// Info describes one stored object.
type Info struct {
	// Key is the object's name.
	Key string
	// Size is the object's logical length in bytes.
	Size int64
}

// Reader is a handle to one stored object, returned by Store.Open.
// Readers of the same or different objects may be used concurrently.
// A Reader is pinned to the version that was live at Open: once the
// object is replaced or deleted, reads fail with ErrNotFound instead of
// silently serving a different version.
type Reader interface {
	// Size returns the object's logical length in bytes.
	Size() int64

	// ReadAll reads the whole object, charging the backend's full read
	// path (one disk request per physically contiguous fragment). The
	// returned payload is non-nil only when the backing drive retains
	// payload bytes (data mode); metadata-only simulation returns nil.
	ReadAll() ([]byte, error)

	// ReadAt reads length bytes starting at off, touching only the
	// physical runs that cover the range — an io.ReaderAt-style ranged
	// read. Payload rules match ReadAll. Reads outside [0, Size()] fail
	// with ErrOutOfRange.
	ReadAt(off, length int64) ([]byte, error)

	// Close releases the handle. Reads after Close fail with ErrClosed.
	Close() error
}

// Writer is a streaming handle for creating or safely replacing one
// object, returned by Store.Create and Store.Replace. Appended bytes
// flow to the backend in store-configured request-sized chunks; nothing
// becomes visible under the key until Commit, and a crash or Abort
// before Commit leaves any previous version intact (the paper's safe
// write, §4).
type Writer interface {
	// Append appends n logical bytes. data may be nil for metadata-only
	// simulation; when non-nil it must be exactly n bytes long. One
	// stream must be all-payload or all-metadata: mixing nil and non-nil
	// appends fails with ErrInvalidSize. The total appended before
	// Commit must equal the size declared at Create/Replace, or Commit
	// fails with ErrInvalidSize.
	Append(n int64, data []byte) error

	// Write implements io.Writer over Append.
	Write(p []byte) (int, error)

	// Commit atomically publishes the new object version and releases the
	// writer. After a successful Commit the writer is closed; after a
	// failed Commit the writer stays open and Abort must be called to
	// release the key.
	Commit() error

	// Abort discards the uncommitted bytes and releases the writer,
	// leaving any previous version of the object untouched. Aborting a
	// committed or already-aborted writer is a no-op.
	Abort() error
}

// Store is the abstract large-object store both backends implement.
// Implementations are safe for concurrent use: per-key striped locks
// order operations touching the same key, at most one uncommitted
// Writer exists per key (a second Create/Replace fails with ErrBusy),
// and a store-level mutex currently serializes access to the
// single-threaded simulation engine underneath — the striping is the
// correctness seam future sharded backends parallelize across, not a
// parallelism guarantee today.
//
// All failures wrap the sentinel errors in errors.go; test with
// errors.Is, never by matching message text.
type Store interface {
	// Name identifies the backend in reports ("filesystem" or
	// "database").
	Name() string

	// Open returns a Reader over an existing object.
	Open(ctx context.Context, key string) (Reader, error)

	// Create starts a streaming write of a new object of exactly size
	// bytes. Creating an existing key fails with ErrAlreadyExists.
	Create(ctx context.Context, key string, size int64) (Writer, error)

	// Replace starts a streaming safe replace (or create) of an object
	// with exactly size new bytes. Until the writer commits, a failure or
	// crash leaves the previous version intact.
	Replace(ctx context.Context, key string, size int64) (Writer, error)

	// Delete removes the object.
	Delete(ctx context.Context, key string) error

	// Stat returns the object's metadata.
	Stat(ctx context.Context, key string) (Info, error)

	// Keys lists live objects in unspecified order.
	Keys() []string

	// ObjectCount returns the number of live objects.
	ObjectCount() int

	// LiveBytes returns the total logical bytes of live objects.
	LiveBytes() int64

	// FreeBytes returns the immediately allocatable bytes of the backing
	// store.
	FreeBytes() int64

	// CapacityBytes returns the store's data capacity.
	CapacityBytes() int64

	// Clock returns the virtual clock charged by the backend's drives.
	Clock() *vclock.Clock

	// EachObjectRuns visits every live object's physical cluster runs
	// (frag.Source).
	EachObjectRuns(fn func(key string, bytes int64, runs []extent.Run))

	// EachObjectTag visits every live object's disk owner tag
	// (frag.TagSource).
	EachObjectTag(fn func(key string, tag uint32))
}
