package blob

import (
	"sync"
	"time"

	"repro/internal/vclock"
)

// This file implements the asynchronous group-commit pipeline behind
// Writer.Commit. The paper's §3.1 folklore blames per-operation log and
// metadata forces for database write cost; group commit is the classic
// amortization: a committing writer enqueues onto its store's commit
// queue, a batcher coalesces the pending commits, the backend issues ONE
// group force for the whole batch, and each waiting writer gets its own
// typed error (or nil) fanned back. Semantics are unchanged — nothing is
// visible under a key before that key's Commit returns — only the force
// schedule moves.
//
// The pipeline has three stages:
//
//	Writer.Commit ──enqueue──▶ queue ──coalesce──▶ batcher ──▶ one group force
//	      ▲                                            │
//	      └────────── per-writer typed error ──────────┘
//
// Stores construct a GroupCommitter with backend begin/end hooks: the
// database engine defers its per-transaction log forces and issues one
// sequential log write per batch (db.Database.BeginGroup/EndGroup); the
// filesystem volume defers safe-write MFT/metadata forces, writes each
// touched metadata cluster once per batch, and flushes its metadata
// database's log once (fs.Volume.BeginBatch/EndBatch). A sharded store
// gives every child its own pipeline, so batches on different shards
// force in parallel.

// pendingCommit is one writer waiting in the commit queue.
type pendingCommit struct {
	// apply performs the writer's commit work (publish, accounting)
	// with the backend's per-commit forces deferred to the group hooks.
	apply func() error
	// done receives the writer's own commit error exactly once.
	done chan error
	// enqueuedNs is the virtual enqueue time, stamped only when an
	// observer is installed.
	enqueuedNs int64
}

// CommitObserver receives the pipeline's latency split: how long each
// commit waited in the queue before its batch began, and how long each
// batch's one group force took. Both in virtual nanoseconds. The
// observability layer (internal/obs) implements this; living here keeps
// blob free of an obs dependency. Implementations must be safe for
// calls from the batcher goroutine.
type CommitObserver interface {
	// ObserveQueueWait records one commit's virtual ns between enqueue
	// and the start of its batch.
	ObserveQueueWait(ns int64)
	// ObserveForce records one batch's group-force virtual ns and the
	// number of commits it covered.
	ObserveForce(ns int64, batch int)
}

// CommitStats counts pipeline activity for one store.
type CommitStats struct {
	// Commits is the number of writer commits processed (including
	// commits whose apply failed; they rode a batch regardless).
	Commits int64
	// Batches is the number of group forces issued — one per coalesced
	// batch, or one per commit when the pipeline runs synchronously.
	Batches int64
	// MaxBatch is the largest batch coalesced.
	MaxBatch int
}

// MeanBatch returns commits per group force — the amortization factor.
func (s CommitStats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Commits) / float64(s.Batches)
}

// GroupCommitter is one store's commit pipeline. With batching enabled
// (maxBatch > 1) a background batcher owns the backend's commit
// critical section; otherwise Do applies commits inline, byte-for-byte
// matching the pre-pipeline stores. Safe for concurrent use.
type GroupCommitter struct {
	maxBatch int
	maxDelay time.Duration
	begin    func() // backend hook: start deferring forces
	end      func() // backend hook: issue the one group force

	queue   chan *pendingCommit
	stop    chan struct{} // closed by Close to halt the batcher
	stopped chan struct{} // closed by the batcher once drained

	// observer and obsClock are set once via SetObserver before the
	// store serves traffic; nil observer records nothing.
	observer CommitObserver
	obsClock *vclock.Clock

	// closeMu orders enqueues against Close: Do sends while holding the
	// read side, Close flips closed under the write side before halting
	// the batcher, so a commit is either enqueued before the batcher's
	// final drain (and served by it) or sees closed and applies inline —
	// never stranded in the queue after the batcher exits.
	closeMu sync.RWMutex
	closed  bool
	once    sync.Once

	mu    sync.Mutex
	stats CommitStats
}

// NewGroupCommitter builds a commit pipeline. maxBatch is the largest
// group coalesced into one force; maxBatch <= 1 disables batching and
// commits synchronously. maxDelay is how long the batcher holds an
// underfull batch open waiting for more commits; 0 coalesces only
// commits already queued (no added latency). begin and end bracket each
// batch on the backend.
func NewGroupCommitter(maxBatch int, maxDelay time.Duration, begin, end func()) *GroupCommitter {
	gc := &GroupCommitter{maxBatch: maxBatch, maxDelay: maxDelay, begin: begin, end: end}
	if maxBatch > 1 {
		gc.queue = make(chan *pendingCommit, 4*maxBatch)
		gc.stop = make(chan struct{})
		gc.stopped = make(chan struct{})
		go gc.run()
	}
	return gc
}

// Batching reports whether commits are coalesced asynchronously.
func (gc *GroupCommitter) Batching() bool { return gc.queue != nil }

// SetObserver installs a pipeline latency observer timed on the given
// virtual clock. Call before the store serves traffic (the store
// constructors do); not synchronized against in-flight commits. The
// synchronous path (Batching false) has no queue and no group force,
// so it reports nothing.
func (gc *GroupCommitter) SetObserver(clock *vclock.Clock, o CommitObserver) {
	gc.observer = o
	gc.obsClock = clock
}

// Do routes one writer's commit through the pipeline and returns that
// writer's own error. It blocks until the commit is durable (its batch's
// group force has been issued), so Commit keeps its synchronous
// contract: nothing is visible before Do returns, and after a failed
// apply the writer is still open for Abort.
func (gc *GroupCommitter) Do(apply func() error) error {
	if gc.queue == nil {
		err := apply()
		gc.record(1)
		return err
	}
	gc.closeMu.RLock()
	if gc.closed {
		gc.closeMu.RUnlock()
		// Wait for the batcher to finish its final drain before applying
		// inline: until it exits, a begin/end bracket may be open on the
		// backend, and an inline commit running inside it would get its
		// forces deferred into someone else's batch — returning before
		// they are issued. After stopped, no bracket exists and the
		// inline apply forces its own records immediately.
		<-gc.stopped
		err := apply()
		gc.record(1)
		return err
	}
	pc := &pendingCommit{apply: apply, done: make(chan error, 1)}
	if gc.observer != nil {
		pc.enqueuedNs = gc.obsClock.Now()
	}
	// The send may block on a full queue, but only while the batcher is
	// alive and draining: Close cannot proceed past closeMu until this
	// read lock is released.
	gc.queue <- pc
	gc.closeMu.RUnlock()
	return <-pc.done
}

// Close drains the queue and stops the batcher. Commits issued after
// Close apply synchronously, so a closed store's writers still work.
func (gc *GroupCommitter) Close() {
	if gc.queue == nil {
		return
	}
	gc.once.Do(func() {
		gc.closeMu.Lock()
		gc.closed = true
		gc.closeMu.Unlock()
		close(gc.stop)
		<-gc.stopped
	})
}

// Stats returns a snapshot of the pipeline counters.
func (gc *GroupCommitter) Stats() CommitStats {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.stats
}

// record counts one flushed batch of n commits.
func (gc *GroupCommitter) record(n int) {
	gc.mu.Lock()
	gc.stats.Commits += int64(n)
	gc.stats.Batches++
	if n > gc.stats.MaxBatch {
		gc.stats.MaxBatch = n
	}
	gc.mu.Unlock()
}

// run is the batcher: it blocks for the first pending commit, coalesces
// up to maxBatch-1 more, and flushes the batch inside one begin/end
// bracket. On Close it drains whatever is still queued, then announces
// exit so late Do calls fall back to synchronous commits.
//
// The batcher owns ONE maxDelay timer for its whole lifetime. The
// timer only runs while a batch is being gathered — gather arms it for
// each batch and disarms it (stopping AND draining the fired tick) on
// every exit path where it did not fire, so an idle store can never
// carry a stale tick into the next batch. Without the drain, a tick
// that fired between batches would truncate the next batch's wait to
// zero: a stale "the delay elapsed" flush for a delay that never ran.
func (gc *GroupCommitter) run() {
	defer close(gc.stopped)
	var timer *time.Timer
	if gc.maxDelay > 0 {
		timer = time.NewTimer(gc.maxDelay)
		stopTimer(timer)
		defer timer.Stop()
	}
	for {
		select {
		case pc := <-gc.queue:
			gc.flush(gc.gather(pc, timer))
		case <-gc.stop:
			for {
				select {
				case pc := <-gc.queue:
					// Final drain: coalesce without the timer (stop has
					// fired; nothing should wait on wall time anymore).
					gc.flush(gc.gather(pc, nil))
				default:
					return
				}
			}
		}
	}
}

// stopTimer disarms t between batches: Stop, plus a drain of the fired
// tick when Stop came too late. Only the batcher goroutine touches the
// timer, so the classic Stop/drain race pattern applies cleanly.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// gather coalesces queued commits behind first, waiting up to maxDelay
// (timer non-nil) for an underfull batch to fill. The timer is armed
// on entry and always disarmed by exit.
func (gc *GroupCommitter) gather(first *pendingCommit, timer *time.Timer) []*pendingCommit {
	batch := []*pendingCommit{first}
	if timer == nil {
		for len(batch) < gc.maxBatch {
			select {
			case pc := <-gc.queue:
				batch = append(batch, pc)
			default:
				return batch
			}
		}
		return batch
	}
	timer.Reset(gc.maxDelay)
	for len(batch) < gc.maxBatch {
		select {
		case pc := <-gc.queue:
			batch = append(batch, pc)
		case <-timer.C:
			// The tick was consumed; the timer is already disarmed.
			return batch
		case <-gc.stop:
			stopTimer(timer)
			return batch
		}
	}
	stopTimer(timer)
	return batch
}

// flush applies every commit in the batch inside one begin/end bracket
// — the single group force — then fans each writer its own error. One
// writer's failure (no space, metadata full) never poisons the rest of
// the batch.
func (gc *GroupCommitter) flush(batch []*pendingCommit) {
	if gc.observer != nil {
		now := gc.obsClock.Now()
		for _, pc := range batch {
			gc.observer.ObserveQueueWait(now - pc.enqueuedNs)
		}
	}
	gc.begin()
	errs := make([]error, len(batch))
	for i, pc := range batch {
		errs[i] = pc.apply()
	}
	var forceStart int64
	if gc.observer != nil {
		forceStart = gc.obsClock.Now()
	}
	gc.end()
	if gc.observer != nil {
		gc.observer.ObserveForce(gc.obsClock.Now()-forceStart, len(batch))
	}
	gc.record(len(batch))
	for i, pc := range batch {
		pc.done <- errs[i]
	}
}

// CommitStatsOf returns s's group-commit pipeline counters when the
// store exposes them (both core backends and the sharded store do).
func CommitStatsOf(s Store) (CommitStats, bool) {
	if cs, ok := s.(interface{ CommitStats() CommitStats }); ok {
		return cs.CommitStats(), true
	}
	return CommitStats{}, false
}

// CloseStore shuts down s's commit pipeline when the store has one.
// Stores remain usable after Close (commits turn synchronous); closing
// is about releasing the batcher goroutine.
func CloseStore(s Store) error {
	if c, ok := s.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}
