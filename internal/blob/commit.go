package blob

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vclock"
)

// This file implements the asynchronous group-commit pipeline behind
// Writer.Commit. The paper's §3.1 folklore blames per-operation log and
// metadata forces for database write cost; group commit is the classic
// amortization: a committing writer enqueues onto its store's commit
// queue, a batcher coalesces the pending commits, the backend issues ONE
// group force for the whole batch, and each waiting writer gets its own
// typed error (or nil) fanned back. Semantics are unchanged — nothing is
// visible under a key before that key's Commit returns — only the force
// schedule moves.
//
// The pipeline has three stages:
//
//	Writer.Commit ──enqueue──▶ queue ──coalesce──▶ batcher ──▶ one group force
//	      ▲                                            │
//	      └────────── per-writer typed error ──────────┘
//
// Stores construct a GroupCommitter with backend begin/end hooks: the
// database engine defers its per-transaction log forces and issues one
// sequential log write per batch (db.Database.BeginGroup/EndGroup); the
// filesystem volume defers safe-write MFT/metadata forces, writes each
// touched metadata cluster once per batch, and flushes its metadata
// database's log once (fs.Volume.BeginBatch/EndBatch). A sharded store
// gives every child its own pipeline, so batches on different shards
// force in parallel.

// pendingCommit is one writer waiting in the commit queue. Instances
// are pooled: Do owns one from checkout until the done receive, after
// which it is reset and recycled — at high stream counts the two
// allocations per commit (struct + channel) were the single largest
// allocation site in the pipeline.
type pendingCommit struct {
	// apply performs the writer's commit work (publish, accounting)
	// with the backend's per-commit forces deferred to the group hooks.
	apply func() error
	// done receives the writer's own commit error exactly once per
	// checkout (buffered, so the flusher never blocks on fan-out).
	done chan error
	// enqueuedNs is the virtual enqueue time, stamped only when an
	// observer is installed.
	enqueuedNs int64
	// err holds the apply's result between the apply loop and the
	// fan-out (replacing a per-batch error slice).
	err error
}

// pcPool recycles pendingCommit structs (and their done channels)
// across commits and across stores.
var pcPool = sync.Pool{
	New: func() any { return &pendingCommit{done: make(chan error, 1)} },
}

// CommitObserver receives the pipeline's latency split: how long each
// commit waited in the queue before its batch began, and how long each
// batch's one group force took. Both in virtual nanoseconds. The
// observability layer (internal/obs) implements this; living here keeps
// blob free of an obs dependency. Implementations must be safe for
// calls from the batcher goroutine.
type CommitObserver interface {
	// ObserveQueueWait records one commit's virtual ns between enqueue
	// and the start of its batch.
	ObserveQueueWait(ns int64)
	// ObserveForce records one batch's group-force virtual ns and the
	// number of commits it covered.
	ObserveForce(ns int64, batch int)
}

// CommitStats counts pipeline activity for one store.
type CommitStats struct {
	// Commits is the number of writer commits processed (including
	// commits whose apply failed; they rode a batch regardless).
	Commits int64
	// Batches is the number of group forces issued — one per coalesced
	// batch, or one per commit when the pipeline runs synchronously.
	Batches int64
	// MaxBatch is the largest batch coalesced.
	MaxBatch int
}

// MeanBatch returns commits per group force — the amortization factor.
func (s CommitStats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Commits) / float64(s.Batches)
}

// GroupCommitter is one store's commit pipeline. With batching enabled
// (maxBatch > 1) a small pool of background batchers gathers commits
// from per-batcher queues and a combining flusher issues the group
// forces; otherwise Do applies commits inline, byte-for-byte matching
// the pre-pipeline stores. Safe for concurrent use.
type GroupCommitter struct {
	maxBatch int
	maxDelay time.Duration
	begin    func() // backend hook: start deferring forces
	end      func() // backend hook: issue the one group force

	// batchers are the gathering stage: Do spreads enqueues across
	// their queues round-robin (rr), each batcher coalesces its own
	// stream of commits, and finished batches meet again in the
	// combining flusher below. One batcher per ~16 commits of maxBatch,
	// capped small — gathering is cheap; the engine under begin/end is
	// the serial section.
	batchers []*batcher
	rr       atomic.Uint64
	stop     chan struct{} // closed by Close to halt all batchers
	stopped  chan struct{} // closed once every batcher has drained

	// The combining flusher: whichever batcher submits a batch while no
	// flush is running becomes the flusher and keeps draining pend —
	// including batches submitted by OTHER batchers while it held the
	// backend bracket — until none remain. Brackets therefore never
	// overlap (the backends are single-threaded under the store mutex)
	// while concurrent batchers still combine into one force; at k=256
	// this is what pushes commits/force past maxBatch.
	pendMu   sync.Mutex
	pend     []*pendingCommit
	spare    []*pendingCommit // drained buffer, swapped back under pend
	flushing bool

	// observer and obsClock are set once via SetObserver before the
	// store serves traffic; nil observer records nothing.
	observer CommitObserver
	obsClock *vclock.Clock

	// closeMu orders enqueues against Close: Do sends while holding the
	// read side, Close flips closed under the write side before halting
	// the batchers, so a commit is either enqueued before the final
	// drain (and served by it) or sees closed and applies inline —
	// never stranded in a queue after the batchers exit.
	closeMu sync.RWMutex
	closed  bool
	once    sync.Once

	mu    sync.Mutex
	stats CommitStats
}

// batcher is one gathering goroutine with its own commit queue.
type batcher struct {
	gc    *GroupCommitter
	queue chan *pendingCommit
}

// batcherCount sizes the gathering pool for a given maxBatch: one
// batcher per 16 commits of configured batch, between 1 and 4. The pool
// deliberately stays small — the backend bracket is serial, so extra
// batchers only help keep gathering off the flusher's critical path.
func batcherCount(maxBatch int) int {
	n := maxBatch / 16
	if n < 1 {
		n = 1
	}
	if n > 4 {
		n = 4
	}
	return n
}

// NewGroupCommitter builds a commit pipeline. maxBatch is the largest
// group one batcher coalesces before submitting (combined forces may
// cover more; see CommitStats.MaxBatch); maxBatch <= 1 disables
// batching and commits synchronously. maxDelay is how long a batcher
// holds an underfull batch open waiting for more commits; 0 coalesces
// only commits already queued (no added latency). begin and end bracket
// each group force on the backend.
func NewGroupCommitter(maxBatch int, maxDelay time.Duration, begin, end func()) *GroupCommitter {
	gc := &GroupCommitter{maxBatch: maxBatch, maxDelay: maxDelay, begin: begin, end: end}
	if maxBatch > 1 {
		gc.stop = make(chan struct{})
		gc.stopped = make(chan struct{})
		n := batcherCount(maxBatch)
		// Per-batcher gather target: the pool together still coalesces
		// up to maxBatch commits per wave, each batcher gathering its
		// share before handing off to the combining flusher.
		per := maxBatch / n
		if per < 2 {
			per = 2
		}
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			b := &batcher{gc: gc, queue: make(chan *pendingCommit, 4*per)}
			gc.batchers = append(gc.batchers, b)
			wg.Add(1)
			go func() {
				defer wg.Done()
				b.run(per)
			}()
		}
		go func() {
			wg.Wait()
			close(gc.stopped)
		}()
	}
	return gc
}

// Batching reports whether commits are coalesced asynchronously.
func (gc *GroupCommitter) Batching() bool { return len(gc.batchers) > 0 }

// SetObserver installs a pipeline latency observer timed on the given
// virtual clock. Call before the store serves traffic (the store
// constructors do); not synchronized against in-flight commits. The
// synchronous path (Batching false) has no queue and no group force,
// so it reports nothing.
func (gc *GroupCommitter) SetObserver(clock *vclock.Clock, o CommitObserver) {
	gc.observer = o
	gc.obsClock = clock
}

// Do routes one writer's commit through the pipeline and returns that
// writer's own error. It blocks until the commit is durable (its batch's
// group force has been issued), so Commit keeps its synchronous
// contract: nothing is visible before Do returns, and after a failed
// apply the writer is still open for Abort.
func (gc *GroupCommitter) Do(apply func() error) error {
	if len(gc.batchers) == 0 {
		err := apply()
		gc.record(1)
		return err
	}
	gc.closeMu.RLock()
	if gc.closed {
		gc.closeMu.RUnlock()
		// Wait for the batchers to finish their final drain before
		// applying inline: until they exit, a begin/end bracket may be
		// open on the backend, and an inline commit running inside it
		// would get its forces deferred into someone else's batch —
		// returning before they are issued. After stopped, no bracket
		// exists and the inline apply forces its own records immediately.
		<-gc.stopped
		err := apply()
		gc.record(1)
		return err
	}
	pc := pcPool.Get().(*pendingCommit)
	pc.apply = apply
	if gc.observer != nil {
		pc.enqueuedNs = gc.obsClock.Now()
	}
	// Round-robin across the batcher queues. The send may block on a
	// full queue, but only while that batcher is alive and draining:
	// Close cannot proceed past closeMu until this read lock is
	// released.
	b := gc.batchers[gc.rr.Add(1)%uint64(len(gc.batchers))]
	b.queue <- pc
	gc.closeMu.RUnlock()
	err := <-pc.done
	pc.apply = nil
	pc.enqueuedNs = 0
	pc.err = nil
	pcPool.Put(pc)
	return err
}

// Close drains the queues and stops the batchers. Commits issued after
// Close apply synchronously, so a closed store's writers still work.
func (gc *GroupCommitter) Close() {
	if len(gc.batchers) == 0 {
		return
	}
	gc.once.Do(func() {
		gc.closeMu.Lock()
		gc.closed = true
		gc.closeMu.Unlock()
		close(gc.stop)
		<-gc.stopped
	})
}

// Stats returns a snapshot of the pipeline counters.
func (gc *GroupCommitter) Stats() CommitStats {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.stats
}

// record counts one flushed batch of n commits.
func (gc *GroupCommitter) record(n int) {
	gc.mu.Lock()
	gc.stats.Commits += int64(n)
	gc.stats.Batches++
	if n > gc.stats.MaxBatch {
		gc.stats.MaxBatch = n
	}
	gc.mu.Unlock()
}

// run is one batcher: it blocks for the first pending commit on its own
// queue, coalesces up to per-1 more, and submits the batch to the
// combining flusher. On Close it drains whatever is still queued, then
// exits; stopped closes once every batcher in the pool has drained, so
// late Do calls fall back to synchronous commits only after no bracket
// can be open.
//
// Each batcher owns ONE maxDelay timer for its whole lifetime. The
// timer only runs while a batch is being gathered — gather arms it for
// each batch and disarms it (stopping AND draining the fired tick) on
// every exit path where it did not fire, so an idle store can never
// carry a stale tick into the next batch. Without the drain, a tick
// that fired between batches would truncate the next batch's wait to
// zero: a stale "the delay elapsed" flush for a delay that never ran.
func (b *batcher) run(per int) {
	gc := b.gc
	var timer *time.Timer
	if gc.maxDelay > 0 {
		//fragvet:ignore vclockpurity the batcher's max-delay flush is real scheduling latency between goroutines, not simulated disk time
		timer = time.NewTimer(gc.maxDelay)
		stopTimer(timer)
		defer timer.Stop()
	}
	// The gather batch is reused across waves: submit hands the commits
	// to the flusher's pend list, so the backing array is free again by
	// the time gather refills it.
	batch := make([]*pendingCommit, 0, per)
	for {
		select {
		case pc := <-b.queue:
			gc.submit(b.gather(batch[:0], pc, per, timer))
		case <-gc.stop:
			for {
				select {
				case pc := <-b.queue:
					// Final drain: coalesce without the timer (stop has
					// fired; nothing should wait on wall time anymore).
					gc.submit(b.gather(batch[:0], pc, per, nil))
				default:
					return
				}
			}
		}
	}
}

// stopTimer disarms t between batches: Stop, plus a drain of the fired
// tick when Stop came too late. Only the batcher goroutine touches the
// timer, so the classic Stop/drain race pattern applies cleanly.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// gather coalesces queued commits behind first into batch (reused
// storage), waiting up to maxDelay (timer non-nil) for an underfull
// batch to fill. The timer is armed on entry and always disarmed by
// exit.
func (b *batcher) gather(batch []*pendingCommit, first *pendingCommit, per int, timer *time.Timer) []*pendingCommit {
	gc := b.gc
	batch = append(batch, first)
	if timer == nil {
		for len(batch) < per {
			select {
			case pc := <-b.queue:
				batch = append(batch, pc)
			default:
				return batch
			}
		}
		return batch
	}
	timer.Reset(gc.maxDelay)
	for len(batch) < per {
		select {
		case pc := <-b.queue:
			batch = append(batch, pc)
		case <-timer.C:
			// The tick was consumed; the timer is already disarmed.
			return batch
		case <-gc.stop:
			stopTimer(timer)
			return batch
		}
	}
	stopTimer(timer)
	return batch
}

// submit hands a gathered batch to the combining flusher. Exactly one
// submitter flushes at a time: the first to arrive takes the flushing
// flag and keeps draining pend — batches landed by other batchers while
// it held the backend bracket ride its next force — until the list is
// empty. The others return immediately; their writers' errors fan back
// through the done channels when the active flusher reaches them.
func (gc *GroupCommitter) submit(batch []*pendingCommit) {
	gc.pendMu.Lock()
	gc.pend = append(gc.pend, batch...)
	if gc.flushing {
		gc.pendMu.Unlock()
		return
	}
	gc.flushing = true
	// pend and spare flip-flop: the drained buffer becomes the next
	// accumulation buffer, so steady-state submission never reallocates.
	for len(gc.pend) > 0 {
		work := gc.pend
		gc.pend = gc.spare[:0]
		gc.pendMu.Unlock()
		gc.flush(work)
		gc.pendMu.Lock()
		gc.spare = work[:0]
	}
	gc.flushing = false
	gc.pendMu.Unlock()
}

// flush applies every commit in the batch inside one begin/end bracket
// — the single group force — then fans each writer its own error. One
// writer's failure (no space, metadata full) never poisons the rest of
// the batch. Only the combining flusher calls this, so brackets never
// overlap on the backend.
func (gc *GroupCommitter) flush(batch []*pendingCommit) {
	if gc.observer != nil {
		now := gc.obsClock.Now()
		for _, pc := range batch {
			gc.observer.ObserveQueueWait(now - pc.enqueuedNs)
		}
	}
	gc.begin()
	for _, pc := range batch {
		pc.err = pc.apply()
	}
	var forceStart int64
	if gc.observer != nil {
		forceStart = gc.obsClock.Now()
	}
	gc.end()
	if gc.observer != nil {
		gc.observer.ObserveForce(gc.obsClock.Now()-forceStart, len(batch))
	}
	gc.record(len(batch))
	for _, pc := range batch {
		pc.done <- pc.err
	}
}

// CommitStatsOf returns s's group-commit pipeline counters when the
// store exposes them (both core backends and the sharded store do).
func CommitStatsOf(s Store) (CommitStats, bool) {
	if cs, ok := s.(interface{ CommitStats() CommitStats }); ok {
		return cs.CommitStats(), true
	}
	return CommitStats{}, false
}

// CloseStore shuts down s's commit pipeline when the store has one.
// Stores remain usable after Close (commits turn synchronous); closing
// is about releasing the batcher goroutine.
func CloseStore(s Store) error {
	if c, ok := s.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}
