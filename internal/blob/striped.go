package blob

import (
	"fmt"
	"sync"
	"unsafe"
)

// DefaultKeyStripes is the stripe count a KeyLocks gets when the
// WithLockStripes option is absent. Power of two so the hash folds with
// a mask.
const DefaultKeyStripes = 64

// KeyLocks is a striped per-key reader/writer lock: keys hash onto a
// fixed array of RWMutexes, giving per-key mutual exclusion without a
// lock per live object. Both store backends order same-key operations
// through the key's stripe. Today the stores also hold a store-level
// mutex around every engine call (the simulation engines are
// single-threaded), so the stripes buy ordering rather than
// parallelism; they are the seam package shard parallelizes across,
// where each shard owns its own engine.
//
// Locks are held for the duration of one store call, never across a
// Reader's or Writer's lifetime, so callers cannot deadlock themselves
// by interleaving handles.
//
// Build a KeyLocks with NewKeyLocks; the zero value has no stripes and
// must not be used.
type KeyLocks struct {
	stripes []paddedRWMutex
	mask    uint64
}

// paddedRWMutex gives each stripe its own cache line: with hundreds of
// streams hashing across the array, adjacent stripes packed 24 bytes
// apart would false-share every lock word.
type paddedRWMutex struct {
	sync.RWMutex
	_ [64 - unsafe.Sizeof(sync.RWMutex{})%64]byte
}

// NewKeyLocks builds a KeyLocks with the given stripe count. A count of
// 0 takes DefaultKeyStripes; anything else must be a positive power of
// two or the constructor fails with ErrBadStripeCount.
func NewKeyLocks(stripes int) (*KeyLocks, error) {
	if stripes == 0 {
		stripes = DefaultKeyStripes
	}
	if stripes < 1 || stripes&(stripes-1) != 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadStripeCount, stripes)
	}
	return &KeyLocks{
		stripes: make([]paddedRWMutex, stripes),
		mask:    uint64(stripes - 1),
	}, nil
}

// Stripes returns the stripe count.
func (kl *KeyLocks) Stripes() int { return len(kl.stripes) }

// stripe returns the lock shard for key (FNV-1a, folded to the stripe
// count).
func (kl *KeyLocks) stripe(key string) *paddedRWMutex {
	return &kl.stripes[fnv1a(key)&kl.mask]
}

// fnv1a hashes s with 64-bit FNV-1a.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Lock acquires key's stripe exclusively.
func (kl *KeyLocks) Lock(key string) { kl.stripe(key).Lock() }

// Unlock releases key's exclusive stripe lock.
func (kl *KeyLocks) Unlock(key string) { kl.stripe(key).Unlock() }

// RLock acquires key's stripe shared.
func (kl *KeyLocks) RLock(key string) { kl.stripe(key).RLock() }

// RUnlock releases key's shared stripe lock.
func (kl *KeyLocks) RUnlock(key string) { kl.stripe(key).RUnlock() }
