package blob

import "sync"

// keyStripes is the shard count of a KeyLocks. Power of two so the hash
// folds with a mask.
const keyStripes = 64

// KeyLocks is a striped per-key reader/writer lock: keys hash onto a
// fixed array of RWMutexes, giving per-key mutual exclusion without a
// lock per live object. Both store backends order same-key operations
// through the key's stripe. Today the stores also hold a store-level
// mutex around every engine call (the simulation engines are
// single-threaded), so the stripes buy ordering rather than
// parallelism; they are the seam a sharded backend parallelizes
// across once each shard owns its own engine.
//
// Locks are held for the duration of one store call, never across a
// Reader's or Writer's lifetime, so callers cannot deadlock themselves
// by interleaving handles.
type KeyLocks struct {
	stripes [keyStripes]sync.RWMutex
}

// stripe returns the lock shard for key (FNV-1a, folded to the stripe
// count).
func (kl *KeyLocks) stripe(key string) *sync.RWMutex {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &kl.stripes[h&(keyStripes-1)]
}

// Lock acquires key's stripe exclusively.
func (kl *KeyLocks) Lock(key string) { kl.stripe(key).Lock() }

// Unlock releases key's exclusive stripe lock.
func (kl *KeyLocks) Unlock(key string) { kl.stripe(key).Unlock() }

// RLock acquires key's stripe shared.
func (kl *KeyLocks) RLock(key string) { kl.stripe(key).RLock() }

// RUnlock releases key's shared stripe lock.
func (kl *KeyLocks) RUnlock(key string) { kl.stripe(key).RUnlock() }
