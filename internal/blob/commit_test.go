package blob

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// hookCounter counts begin/end bracket pairs around batches.
type hookCounter struct {
	mu          sync.Mutex
	begins      int
	ends        int
	openDepth   int
	sawImproper bool
}

func (h *hookCounter) begin() {
	h.mu.Lock()
	h.begins++
	h.openDepth++
	if h.openDepth != 1 {
		h.sawImproper = true
	}
	h.mu.Unlock()
}

func (h *hookCounter) end() {
	h.mu.Lock()
	h.ends++
	h.openDepth--
	if h.openDepth != 0 {
		h.sawImproper = true
	}
	h.mu.Unlock()
}

// TestSynchronousCommitter pins the disabled pipeline: maxBatch <= 1
// applies inline without hooks, recording batches of one.
func TestSynchronousCommitter(t *testing.T) {
	h := &hookCounter{}
	gc := NewGroupCommitter(1, 0, h.begin, h.end)
	if gc.Batching() {
		t.Fatal("maxBatch=1 should not batch")
	}
	for i := 0; i < 5; i++ {
		if err := gc.Do(func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if h.begins != 0 || h.ends != 0 {
		t.Fatalf("synchronous mode ran hooks: %d/%d", h.begins, h.ends)
	}
	st := gc.Stats()
	if st.Commits != 5 || st.Batches != 5 || st.MaxBatch != 1 {
		t.Fatalf("stats = %+v", st)
	}
	gc.Close() // no-op
}

// TestBatcherCoalescesConcurrentCommits pins the pipeline shape: n
// concurrent commits form batches bracketed by exactly one begin/end
// pair each, and every commit's own error comes back to it.
func TestBatcherCoalescesConcurrentCommits(t *testing.T) {
	h := &hookCounter{}
	gc := NewGroupCommitter(8, 2*time.Millisecond, h.begin, h.end)
	defer gc.Close()
	if !gc.Batching() {
		t.Fatal("pipeline should batch")
	}
	boom := errors.New("boom")
	const n = 24
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = gc.Do(func() error {
				if i%6 == 0 {
					return boom
				}
				return nil
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if i%6 == 0 && !errors.Is(err, boom) {
			t.Fatalf("commit %d = %v, want its own boom", i, err)
		}
		if i%6 != 0 && err != nil {
			t.Fatalf("commit %d = %v", i, err)
		}
	}
	st := gc.Stats()
	if st.Commits != n {
		t.Fatalf("commits = %d, want %d", st.Commits, n)
	}
	if st.Batches >= n || st.MeanBatch() <= 1 {
		t.Fatalf("no coalescing: %d batches for %d commits", st.Batches, n)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sawImproper || h.begins != h.ends || int64(h.begins) != st.Batches {
		t.Fatalf("hook bracketing wrong: begins=%d ends=%d batches=%d improper=%v",
			h.begins, h.ends, st.Batches, h.sawImproper)
	}
}

// TestCommitterCloseDrainsAndStaysUsable pins shutdown: Close waits for
// queued commits, and later commits fall back to synchronous mode.
func TestCommitterCloseDrainsAndStaysUsable(t *testing.T) {
	h := &hookCounter{}
	gc := NewGroupCommitter(4, time.Millisecond, h.begin, h.end)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := gc.Do(func() error { return nil }); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	gc.Close()
	gc.Close() // idempotent
	if err := gc.Do(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if st := gc.Stats(); st.Commits != 9 {
		t.Fatalf("commits = %d, want 9", st.Commits)
	}
}

// TestDoCloseRaceNeverStrands hammers Do against Close: every commit
// must return (served by the batcher's final drain or applied inline),
// never strand in the queue after the batcher exits.
func TestDoCloseRaceNeverStrands(t *testing.T) {
	for round := 0; round < 50; round++ {
		gc := NewGroupCommitter(4, 0, func() {}, func() {})
		const n = 16
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := gc.Do(func() error { return nil }); err != nil {
					t.Error(err)
				}
			}()
		}
		gc.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: commits stranded after Close", round)
		}
		if st := gc.Stats(); st.Commits != n {
			t.Fatalf("round %d: %d commits recorded, want %d", round, st.Commits, n)
		}
	}
}

// TestIdleBatcherNoStaleTimerFlush is the regression test for the
// batcher's maxDelay timer lifetime: the batcher reuses ONE timer
// across batches, so a tick left armed (or fired and undrained) after
// one batch could poison the next. It pins that (a) an idle pipeline
// issues no flush at all — the timer only runs while a batch is being
// gathered, so idling can never force a stale empty flush — and (b)
// commits arriving after long idle gaps still form well-formed batches:
// every flush carries at least one commit (Batches <= Commits) and
// every commit is acknowledged exactly once.
func TestIdleBatcherNoStaleTimerFlush(t *testing.T) {
	h := &hookCounter{}
	gc := NewGroupCommitter(4, time.Millisecond, h.begin, h.end)
	defer gc.Close()

	// Idle well past several maxDelay periods: no batch may form.
	time.Sleep(10 * time.Millisecond)
	if st := gc.Stats(); st.Batches != 0 || st.Commits != 0 {
		t.Fatalf("idle pipeline flushed: %+v", st)
	}

	// Rounds of commits separated by idle gaps longer than maxDelay —
	// the window where a stale tick from the previous batch would fire
	// a fresh gather instantly.
	const rounds, perRound = 5, 3
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for i := 0; i < perRound; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := gc.Do(func() error { return nil }); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		time.Sleep(3 * time.Millisecond)
	}

	st := gc.Stats()
	if st.Commits != rounds*perRound {
		t.Fatalf("commits = %d, want %d", st.Commits, rounds*perRound)
	}
	// An empty (stale-tick) flush would record a zero-commit batch,
	// pushing Batches past Commits; a healthy pipeline never can.
	if st.Batches > st.Commits || st.Batches == 0 {
		t.Fatalf("batch ledger wrong: %d batches for %d commits", st.Batches, st.Commits)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sawImproper || h.begins != h.ends || int64(h.begins) != st.Batches {
		t.Fatalf("hook bracketing wrong after idle gaps: begins=%d ends=%d batches=%d improper=%v",
			h.begins, h.ends, st.Batches, h.sawImproper)
	}
}
