package blob

import (
	"context"
	"errors"
	"net/http"
)

// This file is the wire half of the sentinel vocabulary: stable names
// and an HTTP status mapping for every sentinel, so the network blob
// service (internal/server) and its remote-store client
// (internal/client) agree on error identity end-to-end. The name — not
// the status code — is the primary carrier (the server sends it in a
// response header); the status mapping exists for interoperability
// with plain HTTP clients and as the fallback when the header is
// absent.

// errNames orders the sentinel vocabulary for name and status lookup.
// Context errors are included because they cross the store boundary
// with full errors.Is identity, same as the sentinels.
var errNames = []struct {
	err    error
	name   string
	status int
}{
	{ErrNotFound, "notfound", http.StatusNotFound},
	{ErrAlreadyExists, "exists", http.StatusConflict},
	{ErrNoSpaceLeft, "nospace", http.StatusInsufficientStorage},
	{ErrInvalidSize, "badsize", http.StatusBadRequest},
	{ErrOutOfRange, "outofrange", http.StatusRequestedRangeNotSatisfiable},
	{ErrClosed, "closed", http.StatusGone},
	{ErrBusy, "busy", http.StatusLocked},
	{ErrCrashed, "crashed", http.StatusInternalServerError},
	{ErrOverloaded, "overloaded", http.StatusTooManyRequests},
	{ErrUnavailable, "unavailable", http.StatusServiceUnavailable},
	{ErrBadOption, "badoption", http.StatusBadRequest},
	{context.Canceled, "canceled", 499}, // client closed request (nginx convention)
	{context.DeadlineExceeded, "deadline", http.StatusGatewayTimeout},
}

// byName inverts errNames for Sentinel lookup.
var byName = func() map[string]error {
	m := make(map[string]error, len(errNames))
	for _, e := range errNames {
		m[e.name] = e.err
	}
	return m
}()

// ErrName returns the stable wire name of the sentinel err wraps
// ("notfound", "busy", "overloaded", ...), "" for nil, and "other" for
// an error outside the vocabulary. Dispatch uses errors.Is, so any
// wrapping added along the chain is transparent.
func ErrName(err error) string {
	if err == nil {
		return ""
	}
	for _, e := range errNames {
		if errors.Is(err, e.err) {
			return e.name
		}
	}
	return "other"
}

// Sentinel returns the sentinel named by an ErrName wire name, or nil
// when the name is empty, "other", or unknown — the caller then falls
// back to StatusSentinel.
func Sentinel(name string) error {
	return byName[name]
}

// HTTPStatus maps an error to the HTTP status code the network blob
// service responds with: 200 for nil, the per-sentinel codes above, or
// 500 for errors outside the vocabulary.
func HTTPStatus(err error) int {
	if err == nil {
		return http.StatusOK
	}
	for _, e := range errNames {
		if errors.Is(err, e.err) {
			return e.status
		}
	}
	return http.StatusInternalServerError
}

// StatusSentinel maps an HTTP status code back to its sentinel — the
// client's fallback when a response carries no error-name header (a
// proxy in the middle, a non-fragserve endpoint). Statuses without a
// sentinel of their own (and 500) return nil; the caller keeps the
// generic error.
func StatusSentinel(status int) error {
	if status < 400 {
		return nil
	}
	for _, e := range errNames {
		if e.status == status && e.status != http.StatusInternalServerError {
			return e.err
		}
	}
	return nil
}
