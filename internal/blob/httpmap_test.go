package blob

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

// TestErrNameRoundTrip pins that every sentinel's wire name maps back
// to the identical sentinel, wrapped or not — the property the network
// client's error reconstruction rests on.
func TestErrNameRoundTrip(t *testing.T) {
	sentinels := []error{
		ErrNotFound, ErrAlreadyExists, ErrNoSpaceLeft, ErrInvalidSize,
		ErrOutOfRange, ErrClosed, ErrBusy, ErrCrashed, ErrOverloaded,
		ErrUnavailable, ErrBadOption, context.Canceled, context.DeadlineExceeded,
	}
	for _, want := range sentinels {
		name := ErrName(want)
		if name == "" || name == "other" {
			t.Fatalf("ErrName(%v) = %q, want a vocabulary name", want, name)
		}
		got := Sentinel(name)
		if !errors.Is(got, want) {
			t.Fatalf("Sentinel(%q) = %v, want %v", name, got, want)
		}
		// Wrapping is transparent.
		wrapped := fmt.Errorf("layer: %w", want)
		if ErrName(wrapped) != name {
			t.Fatalf("ErrName(wrapped %v) = %q, want %q", want, ErrName(wrapped), name)
		}
	}
	if ErrName(nil) != "" {
		t.Fatalf("ErrName(nil) = %q, want empty", ErrName(nil))
	}
	if ErrName(errors.New("stray")) != "other" {
		t.Fatalf("ErrName(stray) = %q, want other", ErrName(errors.New("stray")))
	}
	if Sentinel("other") != nil || Sentinel("") != nil || Sentinel("nosuch") != nil {
		t.Fatal("Sentinel of other/empty/unknown must be nil")
	}
}

// TestHTTPStatusMapping pins the status codes the server responds with
// and the client-side fallback from status back to sentinel.
func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct {
		err    error
		status int
	}{
		{nil, http.StatusOK},
		{ErrNotFound, http.StatusNotFound},
		{ErrAlreadyExists, http.StatusConflict},
		{ErrNoSpaceLeft, http.StatusInsufficientStorage},
		{ErrInvalidSize, http.StatusBadRequest},
		{ErrOutOfRange, http.StatusRequestedRangeNotSatisfiable},
		{ErrClosed, http.StatusGone},
		{ErrBusy, http.StatusLocked},
		{ErrCrashed, http.StatusInternalServerError},
		{ErrOverloaded, http.StatusTooManyRequests},
		{ErrUnavailable, http.StatusServiceUnavailable},
		{context.Canceled, 499},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{errors.New("stray"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.status {
			t.Fatalf("HTTPStatus(%v) = %d, want %d", c.err, got, c.status)
		}
	}
	// Status fallback recovers the sentinel for every uniquely mapped
	// status; 500 and sub-400 recover nothing.
	for _, c := range cases {
		if c.err == nil || c.status == http.StatusInternalServerError {
			continue
		}
		got := StatusSentinel(c.status)
		if got == nil {
			t.Fatalf("StatusSentinel(%d) = nil, want a sentinel", c.status)
		}
		if HTTPStatus(got) != c.status {
			t.Fatalf("StatusSentinel(%d) = %v which maps to %d", c.status, got, HTTPStatus(got))
		}
	}
	if StatusSentinel(http.StatusOK) != nil || StatusSentinel(http.StatusInternalServerError) != nil {
		t.Fatal("StatusSentinel of 200/500 must be nil")
	}
}
