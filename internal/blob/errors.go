package blob

import "errors"

// The store error vocabulary. Every failure a Store, Reader, or Writer
// reports wraps exactly one of these sentinels, so callers dispatch with
// errors.Is instead of string matching. Both backends — and the engine
// layers beneath them (db.Engine, fs.Volume) — map their internal
// failures onto the same set, so errors.Is holds end-to-end through
// every layer.
var (
	// ErrNotFound reports an operation on a key that does not exist.
	ErrNotFound = errors.New("blob: object not found")

	// ErrAlreadyExists reports a Create of a key that already exists.
	ErrAlreadyExists = errors.New("blob: object already exists")

	// ErrNoSpaceLeft reports an allocation failure in the backing store.
	ErrNoSpaceLeft = errors.New("blob: no space left on store")

	// ErrInvalidSize reports a zero/negative object size, a payload whose
	// length disagrees with the declared size, or a writer committed with
	// a byte count different from the size declared at Create/Replace.
	ErrInvalidSize = errors.New("blob: invalid size")

	// ErrOutOfRange reports a ranged read outside the object's bounds.
	ErrOutOfRange = errors.New("blob: read out of range")

	// ErrClosed reports use of a Reader or Writer after Close, Commit, or
	// Abort.
	ErrClosed = errors.New("blob: handle is closed")

	// ErrBusy reports a Create/Replace of a key that already has an
	// uncommitted writer in flight. Streams to one key are exclusive;
	// retry after the in-flight writer commits or aborts.
	ErrBusy = errors.New("blob: concurrent write in flight for key")

	// ErrCrashed wraps failures injected by simulated crashes.
	ErrCrashed = errors.New("blob: simulated crash")

	// ErrOverloaded reports an operation shed by admission control: the
	// store (or the service in front of it) is at its in-flight limit
	// and its wait queue is full, so the op was refused immediately
	// rather than queued without bound. Retry with backoff. Maps to
	// HTTP 429 Too Many Requests at the network boundary.
	ErrOverloaded = errors.New("blob: store overloaded, operation shed")

	// ErrUnavailable reports an operation refused because the store is
	// draining (shutting down) or an admitted op waited longer than the
	// service's queue budget. Unlike ErrOverloaded the condition is not
	// necessarily relieved by backoff alone. Maps to HTTP 503 Service
	// Unavailable at the network boundary.
	ErrUnavailable = errors.New("blob: store unavailable")

	// ErrBadStripeCount reports a WithLockStripes value that is not a
	// positive power of two (the stripe hash folds with a mask).
	ErrBadStripeCount = errors.New("blob: key-lock stripe count must be a positive power of two")

	// ErrBadOption reports an invalid or missing store option at
	// construction: a missing WithCapacity, a negative group-commit
	// batch or delay, or a bad stripe count (which wraps both this
	// sentinel and ErrBadStripeCount). Store constructors return it
	// instead of panicking.
	ErrBadOption = errors.New("blob: invalid store option")
)
