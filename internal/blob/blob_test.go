package blob

import (
	"errors"
	"testing"

	"repro/internal/disk"
)

func TestOptionsCompose(t *testing.T) {
	geo := disk.DefaultGeometry(1 << 30)
	o := NewOptions(
		WithCapacity(1<<30),
		WithDiskMode(disk.DataMode),
		WithGeometry(geo),
		WithWriteRequestSize(1<<16),
		WithSizeHint(),
		WithDelayedAllocation(),
		WithLogCapacity(2<<30),
		WithMetaCapacity(1<<28),
		WithoutOwnerMap(),
		WithFullLogging(),
		WithGhostHorizon(4),
		WithLockStripes(128),
	)
	if o.Capacity != 1<<30 || o.DiskMode != disk.DataMode {
		t.Fatalf("capacity/mode: %+v", o)
	}
	if o.Geometry == nil || o.Geometry.Clusters != geo.Clusters {
		t.Fatalf("geometry: %+v", o.Geometry)
	}
	if o.WriteRequestSize != 1<<16 || !o.SizeHint || !o.DelayedAllocation {
		t.Fatalf("write path opts: %+v", o)
	}
	if o.LogCapacity != 2<<30 || o.MetaCapacity != 1<<28 {
		t.Fatalf("drive sizing: %+v", o)
	}
	if !o.NoOwnerMap || !o.FullLogging || o.GhostHorizon != 4 {
		t.Fatalf("backend knobs: %+v", o)
	}
	if o.LockStripes != 128 {
		t.Fatalf("lock stripes: %+v", o)
	}
	if zero := NewOptions(); zero != (Options{}) {
		t.Fatalf("no options must yield the zero value: %+v", zero)
	}
}

func TestNewKeyLocksValidation(t *testing.T) {
	// 0 takes the default; powers of two are accepted as given.
	for n, want := range map[int]int{0: DefaultKeyStripes, 1: 1, 2: 2, 64: 64, 1024: 1024} {
		kl, err := NewKeyLocks(n)
		if err != nil {
			t.Fatalf("NewKeyLocks(%d): %v", n, err)
		}
		if kl.Stripes() != want {
			t.Fatalf("NewKeyLocks(%d).Stripes() = %d, want %d", n, kl.Stripes(), want)
		}
	}
	// Everything else is refused with the typed sentinel.
	for _, n := range []int{-1, -64, 3, 6, 100} {
		if _, err := NewKeyLocks(n); !errors.Is(err, ErrBadStripeCount) {
			t.Fatalf("NewKeyLocks(%d) = %v, want ErrBadStripeCount", n, err)
		}
	}
}

func TestKeyLocksStableStripes(t *testing.T) {
	kl, err := NewKeyLocks(0)
	if err != nil {
		t.Fatal(err)
	}
	// The same key must always land on the same stripe.
	for _, key := range []string{"", "a", "obj-00000001", "album-003/img-0001.jpg"} {
		if kl.stripe(key) != kl.stripe(key) {
			t.Fatalf("key %q hashed to different stripes", key)
		}
	}
	// Many keys must spread over more than one stripe.
	seen := map[*paddedRWMutex]bool{}
	for _, key := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"} {
		seen[kl.stripe(key)] = true
	}
	if len(seen) < 2 {
		t.Fatal("ten keys collapsed onto one stripe")
	}
}

func TestKeyLocksExcludeSameKey(t *testing.T) {
	kl, err := NewKeyLocks(16)
	if err != nil {
		t.Fatal(err)
	}
	kl.Lock("k")
	acquired := make(chan struct{})
	go func() {
		kl.Lock("k")
		close(acquired)
		kl.Unlock("k")
	}()
	select {
	case <-acquired:
		t.Fatal("second Lock of the same key succeeded while held")
	default:
	}
	kl.Unlock("k")
	<-acquired
}
