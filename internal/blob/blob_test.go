package blob

import (
	"sync"
	"testing"

	"repro/internal/disk"
)

func TestOptionsCompose(t *testing.T) {
	geo := disk.DefaultGeometry(1 << 30)
	o := NewOptions(
		WithCapacity(1<<30),
		WithDiskMode(disk.DataMode),
		WithGeometry(geo),
		WithWriteRequestSize(1<<16),
		WithSizeHint(),
		WithDelayedAllocation(),
		WithLogCapacity(2<<30),
		WithMetaCapacity(1<<28),
		WithoutOwnerMap(),
		WithFullLogging(),
		WithGhostHorizon(4),
	)
	if o.Capacity != 1<<30 || o.DiskMode != disk.DataMode {
		t.Fatalf("capacity/mode: %+v", o)
	}
	if o.Geometry == nil || o.Geometry.Clusters != geo.Clusters {
		t.Fatalf("geometry: %+v", o.Geometry)
	}
	if o.WriteRequestSize != 1<<16 || !o.SizeHint || !o.DelayedAllocation {
		t.Fatalf("write path opts: %+v", o)
	}
	if o.LogCapacity != 2<<30 || o.MetaCapacity != 1<<28 {
		t.Fatalf("drive sizing: %+v", o)
	}
	if !o.NoOwnerMap || !o.FullLogging || o.GhostHorizon != 4 {
		t.Fatalf("backend knobs: %+v", o)
	}
	if zero := NewOptions(); zero != (Options{}) {
		t.Fatalf("no options must yield the zero value: %+v", zero)
	}
}

func TestKeyLocksStableStripes(t *testing.T) {
	var kl KeyLocks
	// The same key must always land on the same stripe.
	for _, key := range []string{"", "a", "obj-00000001", "album-003/img-0001.jpg"} {
		if kl.stripe(key) != kl.stripe(key) {
			t.Fatalf("key %q hashed to different stripes", key)
		}
	}
	// Many keys must spread over more than one stripe.
	seen := map[*sync.RWMutex]bool{}
	for _, key := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"} {
		seen[kl.stripe(key)] = true
	}
	if len(seen) < 2 {
		t.Fatal("ten keys collapsed onto one stripe")
	}
}

func TestKeyLocksExcludeSameKey(t *testing.T) {
	var kl KeyLocks
	kl.Lock("k")
	acquired := make(chan struct{})
	go func() {
		kl.Lock("k")
		close(acquired)
		kl.Unlock("k")
	}()
	select {
	case <-acquired:
		t.Fatal("second Lock of the same key succeeded while held")
	default:
	}
	kl.Unlock("k")
	<-acquired
}
