package blob

import (
	"fmt"
	"time"

	"repro/internal/disk"
)

// Options collects the backend-independent store configuration both
// implementations consume. The zero value is usable except for Capacity,
// which every constructor requires; backends apply their own defaults to
// the remaining fields. Build an Options with the With* functional
// options rather than filling the struct directly.
type Options struct {
	// Capacity is the data drive/volume size in bytes. Required.
	Capacity int64

	// DiskMode selects payload retention on the data drive (data mode
	// for integrity tests, metadata mode for large simulations).
	DiskMode disk.Mode

	// Geometry overrides the data drive geometry; nil takes
	// disk.DefaultGeometry(Capacity).
	Geometry *disk.Geometry

	// WriteRequestSize is the append request size in bytes: a Writer's
	// appends reach the backend allocator in chunks of this size, the
	// granularity the paper's tests fixed at 64 KB (§5.3). 0 takes 64 KB;
	// negative flushes each append as a single request.
	WriteRequestSize int64

	// SizeHint passes the declared object size to the allocator before
	// the first append — the paper's proposed interface change (§6), off
	// by default as no such interface existed. Filesystem backend only.
	SizeHint bool

	// DelayedAllocation buffers appended bytes and allocates only at
	// commit, with the final size known (§3.4). Filesystem backend only.
	DelayedAllocation bool

	// LogCapacity sizes the database backend's dedicated log drive
	// (default 2 GB): "SQL was given a dedicated log and data drive"
	// (§4.1).
	LogCapacity int64

	// MetaCapacity sizes the filesystem backend's metadata database
	// drive (default 1 GB).
	MetaCapacity int64

	// NoOwnerMap skips the per-cluster owner map on the data drive (for
	// very large simulated volumes); the marker scanner is unavailable.
	NoOwnerMap bool

	// FullLogging makes the database backend write BLOB payload bytes
	// through the transaction log (ordinary full recovery mode); the
	// paper ran bulk-logged (§4).
	FullLogging bool

	// GhostHorizon is the database backend's deferred page-reclamation
	// horizon in committed operations; 0 takes the engine default.
	GhostHorizon int

	// LockStripes is the per-key striped-lock shard count, validated by
	// NewKeyLocks at store construction: 0 takes DefaultKeyStripes, any
	// other value must be a positive power of two (ErrBadStripeCount
	// otherwise). More stripes reduce false sharing between hot keys.
	LockStripes int

	// GroupCommitBatch is the largest number of commits the store's
	// group-commit pipeline coalesces into one backend force. 0 or 1
	// commits synchronously (no pipeline); set via WithGroupCommit.
	GroupCommitBatch int

	// GroupCommitDelay is how long the batcher holds an underfull batch
	// open waiting for more commits; 0 coalesces only commits already
	// queued. Set via WithGroupCommit.
	GroupCommitDelay time.Duration

	// CommitObserver receives the group-commit pipeline's queue-wait and
	// group-force timings (virtual ns); nil records nothing. Set via
	// WithCommitObserver.
	CommitObserver CommitObserver
}

// Validate reports the backend-independent misconfigurations as
// ErrBadOption. Store constructors call it (and return the error)
// before building any simulated hardware.
func (o Options) Validate() error {
	if o.Capacity <= 0 {
		return fmt.Errorf("%w: WithCapacity is required", ErrBadOption)
	}
	if o.GroupCommitBatch < 0 {
		return fmt.Errorf("%w: group-commit batch %d is negative", ErrBadOption, o.GroupCommitBatch)
	}
	if o.GroupCommitDelay < 0 {
		return fmt.Errorf("%w: group-commit delay %v is negative", ErrBadOption, o.GroupCommitDelay)
	}
	return nil
}

// Option configures a Store at construction.
type Option func(*Options)

// NewOptions applies opts over the zero Options.
func NewOptions(opts ...Option) Options {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithCapacity sets the data drive/volume size in bytes.
func WithCapacity(bytes int64) Option {
	return func(o *Options) { o.Capacity = bytes }
}

// WithDiskMode selects payload retention on the data drive.
func WithDiskMode(mode disk.Mode) Option {
	return func(o *Options) { o.DiskMode = mode }
}

// WithGeometry overrides the data drive geometry.
func WithGeometry(geo disk.Geometry) Option {
	return func(o *Options) { o.Geometry = &geo }
}

// WithWriteRequestSize sets the append request size in bytes; negative
// flushes each append whole.
func WithWriteRequestSize(bytes int64) Option {
	return func(o *Options) { o.WriteRequestSize = bytes }
}

// WithSizeHint passes declared object sizes to the allocator before the
// first append (filesystem backend).
func WithSizeHint() Option {
	return func(o *Options) { o.SizeHint = true }
}

// WithDelayedAllocation buffers appends and allocates at commit
// (filesystem backend).
func WithDelayedAllocation() Option {
	return func(o *Options) { o.DelayedAllocation = true }
}

// WithLogCapacity sizes the database backend's dedicated log drive.
func WithLogCapacity(bytes int64) Option {
	return func(o *Options) { o.LogCapacity = bytes }
}

// WithMetaCapacity sizes the filesystem backend's metadata database
// drive.
func WithMetaCapacity(bytes int64) Option {
	return func(o *Options) { o.MetaCapacity = bytes }
}

// WithoutOwnerMap skips the per-cluster owner map on the data drive.
func WithoutOwnerMap() Option {
	return func(o *Options) { o.NoOwnerMap = true }
}

// WithFullLogging routes payload bytes through the database transaction
// log (database backend).
func WithFullLogging() Option {
	return func(o *Options) { o.FullLogging = true }
}

// WithGhostHorizon sets the database backend's deferred page-reclamation
// horizon.
func WithGhostHorizon(ops int) Option {
	return func(o *Options) { o.GhostHorizon = ops }
}

// WithLockStripes sets the per-key striped-lock shard count. The value
// must be a positive power of two: NewKeyLocks reports anything else as
// ErrBadStripeCount, which the store constructors wrap in ErrBadOption
// and return.
func WithLockStripes(n int) Option {
	return func(o *Options) { o.LockStripes = n }
}

// WithGroupCommit enables the asynchronous group-commit pipeline:
// Writer.Commit enqueues onto the store's commit queue, a batcher
// coalesces up to maxBatch pending commits, and the backend issues one
// group force per batch instead of one per transaction — the classic
// amortization of the per-operation costs §3.1's folklore blames.
// maxDelay bounds how long an underfull batch waits for company; 0 adds
// no latency and coalesces only commits already queued. maxBatch <= 1
// leaves commits synchronous.
func WithGroupCommit(maxBatch int, maxDelay time.Duration) Option {
	return func(o *Options) {
		o.GroupCommitBatch = maxBatch
		o.GroupCommitDelay = maxDelay
	}
}

// WithCommitObserver installs a group-commit pipeline latency observer
// (obs.NewCommitObserver builds one recording into a registry). Only
// meaningful together with WithGroupCommit; the synchronous commit
// path has no queue or group force to report.
func WithCommitObserver(o CommitObserver) Option {
	return func(opts *Options) { opts.CommitObserver = o }
}
