package blob

import "context"

// BufferAdapter bridges whole-buffer call sites onto the streaming API:
// each method opens the appropriate streaming handle, moves the entire
// buffer through it, and commits. The workload generator, trace
// replayer, and CLIs use it where an operation is logically one
// whole-object transfer; code that genuinely streams should use the
// Store handles directly.

// Put stores a new object of size bytes through a streaming writer.
// data may be nil for metadata-only simulation; when non-nil it must be
// size bytes long.
func Put(ctx context.Context, s Store, key string, size int64, data []byte) error {
	w, err := s.Create(ctx, key, size)
	if err != nil {
		return err
	}
	return WriteAll(w, size, data)
}

// Replace safely replaces (or creates) an object with size new bytes
// through a streaming writer; the previous version survives any failure
// before commit.
func Replace(ctx context.Context, s Store, key string, size int64, data []byte) error {
	w, err := s.Replace(ctx, key, size)
	if err != nil {
		return err
	}
	return WriteAll(w, size, data)
}

// Get reads a whole object, returning its size and — when the backing
// drive retains payloads — its contents.
func Get(ctx context.Context, s Store, key string) (int64, []byte, error) {
	r, err := s.Open(ctx, key)
	if err != nil {
		return 0, nil, err
	}
	defer r.Close()
	data, err := r.ReadAll()
	if err != nil {
		return 0, nil, err
	}
	return r.Size(), data, nil
}

// WriteAll appends one whole buffer to w and commits, aborting the
// writer on any failure so the key is released.
func WriteAll(w Writer, size int64, data []byte) error {
	if err := w.Append(size, data); err != nil {
		w.Abort()
		return err
	}
	if err := w.Commit(); err != nil {
		w.Abort()
		return err
	}
	return nil
}
