package blob

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running —
// the group-commit pipeline promises to drain on Close.
func TestMain(m *testing.M) { leakcheck.Main(m) }
