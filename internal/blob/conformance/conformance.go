// Package conformance is the cross-backend contract suite for the v2
// blob.Store API. Both backends run one table of API-contract tests —
// put/get/replace/delete/stat semantics, typed-error identity, ranged
// reads, streaming writer lifecycle, concurrency, and context
// cancellation — so the filesystem and database implementations can
// never drift apart semantically.
package conformance

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/disk"
	"repro/internal/units"
)

// Factory builds a fresh store for one subtest. The suite passes the
// capacity and disk mode each test needs and expects an empty store.
type Factory func(opts ...blob.Option) blob.Store

// Run executes the full contract suite against stores built by mk.
func Run(t *testing.T, mk Factory) {
	tests := []struct {
		name string
		fn   func(*testing.T, Factory)
	}{
		{"RoundTrip", testRoundTrip},
		{"TypedErrors", testTypedErrors},
		{"ReplaceSemantics", testReplaceSemantics},
		{"RangedReads", testRangedReads},
		{"ReaderPinnedToVersion", testReaderPinnedToVersion},
		{"WriterLifecycle", testWriterLifecycle},
		{"MixedAppendsRejected", testMixedAppendsRejected},
		{"AbortPreservesOldVersion", testAbortPreservesOldVersion},
		{"NoSpace", testNoSpace},
		{"ContextCancellation", testContextCancellation},
		{"ContextDeadline", testContextDeadline},
		{"ConcurrentReaders", testConcurrentReaders},
		{"ConcurrentWriters", testConcurrentWriters},
		{"ConcurrentMixedChurn", testConcurrentMixedChurn},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) { tc.fn(t, mk) })
	}
}

func payload(n int64) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i%251 + 1)
	}
	return p
}

// testRoundTrip pins the basic put/get/stat/delete contract and the
// store's accounting surface.
func testRoundTrip(t *testing.T, mk Factory) {
	ctx := context.Background()
	s := mk(blob.WithCapacity(128*units.MB), blob.WithDiskMode(disk.DataMode))
	data := payload(200 * units.KB)

	if err := blob.Put(ctx, s, "a", int64(len(data)), data); err != nil {
		t.Fatal(err)
	}
	r, err := s.Open(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", r.Size(), len(data))
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ReadAll payload mismatch")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	//fragvet:ignore poollifecycle the conformance suite deliberately reads after Close to pin the ErrClosed contract
	if _, err := r.ReadAll(); !errors.Is(err, blob.ErrClosed) {
		t.Fatalf("read after Close = %v, want ErrClosed", err)
	}

	info, err := s.Stat(ctx, "a")
	if err != nil || info.Size != int64(len(data)) || info.Key != "a" {
		t.Fatalf("Stat = %+v, %v", info, err)
	}
	if s.ObjectCount() != 1 || s.LiveBytes() != int64(len(data)) {
		t.Fatalf("count=%d live=%d", s.ObjectCount(), s.LiveBytes())
	}
	if keys := s.Keys(); len(keys) != 1 || keys[0] != "a" {
		t.Fatalf("Keys = %v", keys)
	}

	if err := s.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if s.ObjectCount() != 0 || s.LiveBytes() != 0 {
		t.Fatalf("count=%d live=%d after delete", s.ObjectCount(), s.LiveBytes())
	}
}

// testTypedErrors pins errors.Is identity for every sentinel the basic
// operations can produce.
func testTypedErrors(t *testing.T, mk Factory) {
	ctx := context.Background()
	s := mk(blob.WithCapacity(64*units.MB), blob.WithDiskMode(disk.MetadataMode))

	if _, err := s.Open(ctx, "ghost"); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("Open missing = %v, want ErrNotFound", err)
	}
	if _, err := s.Stat(ctx, "ghost"); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("Stat missing = %v, want ErrNotFound", err)
	}
	if err := s.Delete(ctx, "ghost"); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("Delete missing = %v, want ErrNotFound", err)
	}
	if _, err := s.Create(ctx, "zero", 0); !errors.Is(err, blob.ErrInvalidSize) {
		t.Fatalf("Create size 0 = %v, want ErrInvalidSize", err)
	}

	if err := blob.Put(ctx, s, "a", 256*units.KB, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(ctx, "a", 256*units.KB); !errors.Is(err, blob.ErrAlreadyExists) {
		t.Fatalf("Create existing = %v, want ErrAlreadyExists", err)
	}

	// A second uncommitted writer for the same key is refused.
	w, err := s.Replace(ctx, "a", 64*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Replace(ctx, "a", 64*units.KB); !errors.Is(err, blob.ErrBusy) {
		t.Fatalf("second writer = %v, want ErrBusy", err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	// After abort the key accepts a new writer again.
	if err := blob.Replace(ctx, s, "a", 64*units.KB, nil); err != nil {
		t.Fatal(err)
	}
}

// testReplaceSemantics pins create-if-missing, size accounting, and
// old-version retirement.
func testReplaceSemantics(t *testing.T, mk Factory) {
	ctx := context.Background()
	s := mk(blob.WithCapacity(128*units.MB), blob.WithDiskMode(disk.DataMode))

	// Replace of a missing key creates it.
	d1 := payload(100 * units.KB)
	if err := blob.Replace(ctx, s, "a", int64(len(d1)), d1); err != nil {
		t.Fatal(err)
	}
	// Replace swaps contents and live-byte accounting follows the new
	// size.
	d2 := payload(64 * units.KB)
	for i := range d2 {
		d2[i] = byte(255 - i%256)
	}
	if err := blob.Replace(ctx, s, "a", int64(len(d2)), d2); err != nil {
		t.Fatal(err)
	}
	_, got, err := blob.Get(ctx, s, "a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, d2) {
		t.Fatal("Replace payload mismatch")
	}
	if s.LiveBytes() != int64(len(d2)) || s.ObjectCount() != 1 {
		t.Fatalf("live=%d count=%d after replace", s.LiveBytes(), s.ObjectCount())
	}
}

// testRangedReads pins ReadAt: correct bytes, only covering runs
// touched, ErrOutOfRange beyond bounds.
func testRangedReads(t *testing.T, mk Factory) {
	ctx := context.Background()
	s := mk(blob.WithCapacity(128*units.MB), blob.WithDiskMode(disk.DataMode))
	data := payload(1 * units.MB)
	if err := blob.Put(ctx, s, "a", int64(len(data)), data); err != nil {
		t.Fatal(err)
	}
	r, err := s.Open(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	before := s.Clock().Seconds()
	got, err := r.ReadAt(512*units.KB, 64*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[512*units.KB:512*units.KB+64*units.KB]) {
		t.Fatal("ReadAt payload mismatch")
	}
	if s.Clock().Seconds() == before {
		t.Fatal("ranged read charged no virtual time")
	}
	rangedCost := s.Clock().Seconds() - before

	before = s.Clock().Seconds()
	if _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if full := s.Clock().Seconds() - before; full <= rangedCost {
		t.Fatalf("64KB ranged read (%.6fs) not cheaper than 1MB full read (%.6fs)", rangedCost, full)
	}

	if _, err := r.ReadAt(900*units.KB, 200*units.KB); !errors.Is(err, blob.ErrOutOfRange) {
		t.Fatalf("read past EOF = %v, want ErrOutOfRange", err)
	}
	if _, err := r.ReadAt(-1, 10); !errors.Is(err, blob.ErrOutOfRange) {
		t.Fatalf("negative offset = %v, want ErrOutOfRange", err)
	}
	// A hostile offset must not overflow the bounds check into a panic.
	if _, err := r.ReadAt(math.MaxInt64-10, 100); !errors.Is(err, blob.ErrOutOfRange) {
		t.Fatalf("overflowing offset = %v, want ErrOutOfRange", err)
	}
}

// testReaderPinnedToVersion pins that a Reader serves only the version
// it opened: after a replace or delete, reads fail with ErrNotFound on
// both backends rather than silently serving different bytes.
func testReaderPinnedToVersion(t *testing.T, mk Factory) {
	ctx := context.Background()
	s := mk(blob.WithCapacity(128*units.MB), blob.WithDiskMode(disk.DataMode))
	old := payload(128 * units.KB)
	if err := blob.Put(ctx, s, "a", int64(len(old)), old); err != nil {
		t.Fatal(err)
	}
	r, err := s.Open(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := blob.Replace(ctx, s, "a", 64*units.KB, payload(64*units.KB)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAll(); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("ReadAll across replace = %v, want ErrNotFound", err)
	}
	if _, err := r.ReadAt(0, 4*units.KB); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("ReadAt across replace = %v, want ErrNotFound", err)
	}

	r2, err := s.Open(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if err := s.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.ReadAll(); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("ReadAll across delete = %v, want ErrNotFound", err)
	}
}

// testWriterLifecycle pins the streaming writer contract: chunked
// appends, declared-size enforcement, ErrClosed after commit.
func testWriterLifecycle(t *testing.T, mk Factory) {
	ctx := context.Background()
	s := mk(blob.WithCapacity(128*units.MB), blob.WithDiskMode(disk.DataMode),
		blob.WithWriteRequestSize(64*units.KB))

	data := payload(300 * units.KB)
	w, err := s.Create(ctx, "a", int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	// Nothing visible before commit.
	if _, err := s.Open(ctx, "a"); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("Open before commit = %v, want ErrNotFound", err)
	}
	// Stream in caller-chosen chunk sizes; the store re-chunks to its
	// request size internally.
	if err := w.Append(100*units.KB, data[:100*units.KB]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data[100*units.KB:]); err != nil {
		t.Fatal(err)
	}
	// Appending past the declared size is refused.
	if err := w.Append(1, []byte{0}); !errors.Is(err, blob.ErrInvalidSize) {
		t.Fatalf("over-append = %v, want ErrInvalidSize", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	//fragvet:ignore poollifecycle the conformance suite deliberately appends after Commit to pin the ErrClosed contract
	if err := w.Append(1, nil); !errors.Is(err, blob.ErrClosed) {
		t.Fatalf("append after commit = %v, want ErrClosed", err)
	}
	if err := w.Commit(); !errors.Is(err, blob.ErrClosed) {
		t.Fatalf("double commit = %v, want ErrClosed", err)
	}
	_, got, err := blob.Get(ctx, s, "a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("streamed payload mismatch")
	}

	// A short commit is refused and the writer stays abortable.
	w2, err := s.Create(ctx, "b", 128*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(64*units.KB, nil); err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(); !errors.Is(err, blob.ErrInvalidSize) {
		t.Fatalf("short commit = %v, want ErrInvalidSize", err)
	}
	if err := w2.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(ctx, "b"); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("aborted object visible: %v", err)
	}
}

// testMixedAppendsRejected pins that one stream is all-payload or
// all-metadata: mixing would otherwise let backends retain silently
// partial payloads.
func testMixedAppendsRejected(t *testing.T, mk Factory) {
	ctx := context.Background()
	s := mk(blob.WithCapacity(64*units.MB), blob.WithDiskMode(disk.DataMode))
	w, err := s.Create(ctx, "a", 128*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(64*units.KB, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(64*units.KB, payload(64*units.KB)); !errors.Is(err, blob.ErrInvalidSize) {
		t.Fatalf("payload after metadata-only append = %v, want ErrInvalidSize", err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}

	w2, err := s.Create(ctx, "b", 128*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(64*units.KB, payload(64*units.KB)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(64*units.KB, nil); !errors.Is(err, blob.ErrInvalidSize) {
		t.Fatalf("metadata-only after payload append = %v, want ErrInvalidSize", err)
	}
	if err := w2.Abort(); err != nil {
		t.Fatal(err)
	}
}

// testAbortPreservesOldVersion pins the safe-write property through the
// streaming API: an aborted replace leaves the previous version intact.
func testAbortPreservesOldVersion(t *testing.T, mk Factory) {
	ctx := context.Background()
	s := mk(blob.WithCapacity(128*units.MB), blob.WithDiskMode(disk.DataMode))
	old := payload(128 * units.KB)
	if err := blob.Put(ctx, s, "a", int64(len(old)), old); err != nil {
		t.Fatal(err)
	}
	w, err := s.Replace(ctx, "a", 256*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(64*units.KB, payload(64*units.KB)); err != nil {
		t.Fatal(err)
	}
	// The old version stays readable while the stream is in flight.
	if _, got, err := blob.Get(ctx, s, "a"); err != nil || !bytes.Equal(got, old) {
		t.Fatalf("old version unreadable mid-stream: %v", err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	n, got, err := blob.Get(ctx, s, "a")
	if err != nil || n != int64(len(old)) || !bytes.Equal(got, old) {
		t.Fatalf("old version damaged after abort: n=%d err=%v", n, err)
	}
	if s.LiveBytes() != int64(len(old)) {
		t.Fatalf("LiveBytes = %d after abort, want %d", s.LiveBytes(), len(old))
	}
}

// testNoSpace pins ErrNoSpaceLeft and that a failed oversized write
// leaves prior objects intact.
func testNoSpace(t *testing.T, mk Factory) {
	ctx := context.Background()
	s := mk(blob.WithCapacity(16*units.MB), blob.WithDiskMode(disk.MetadataMode))
	if err := blob.Put(ctx, s, "a", 6*units.MB, nil); err != nil {
		t.Fatal(err)
	}
	err := blob.Put(ctx, s, "big", 64*units.MB, nil)
	if !errors.Is(err, blob.ErrNoSpaceLeft) {
		t.Fatalf("oversized put = %v, want ErrNoSpaceLeft", err)
	}
	if info, err := s.Stat(ctx, "a"); err != nil || info.Size != 6*units.MB {
		t.Fatalf("prior object damaged: %+v, %v", info, err)
	}
	if _, err := s.Stat(ctx, "big"); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("failed put left a visible object: %v", err)
	}
}

// testContextCancellation pins cancellation at open and mid-stream.
func testContextCancellation(t *testing.T, mk Factory) {
	s := mk(blob.WithCapacity(64*units.MB), blob.WithDiskMode(disk.MetadataMode))
	if err := blob.Put(context.Background(), s, "a", 1*units.MB, nil); err != nil {
		t.Fatal(err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Open(canceled, "a"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Open with canceled ctx = %v, want context.Canceled", err)
	}
	if _, err := s.Replace(canceled, "a", 1*units.MB); !errors.Is(err, context.Canceled) {
		t.Fatalf("Replace with canceled ctx = %v, want context.Canceled", err)
	}
	if err := s.Delete(canceled, "a"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Delete with canceled ctx = %v, want context.Canceled", err)
	}

	// Cancel mid-stream: the writer refuses further work, Abort cleans
	// up, and the old version survives.
	ctx, cancelMid := context.WithCancel(context.Background())
	w, err := s.Replace(ctx, "a", 1*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(256*units.KB, nil); err != nil {
		t.Fatal(err)
	}
	cancelMid()
	if err := w.Append(256*units.KB, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("append after cancel = %v, want context.Canceled", err)
	}
	if err := w.Commit(); !errors.Is(err, context.Canceled) {
		t.Fatalf("commit after cancel = %v, want context.Canceled", err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	if info, err := s.Stat(context.Background(), "a"); err != nil || info.Size != 1*units.MB {
		t.Fatalf("old version damaged after canceled stream: %+v, %v", info, err)
	}
}

// testContextDeadline pins deadline behavior: every operation on an
// expired context returns context.DeadlineExceeded (not Canceled, not
// a store sentinel), a deadline that expires mid-stream stops the
// reader and writer cleanly, and the handles release their resources —
// the key accepts a new writer, the old version is intact, and fresh
// handles work. The network front-end's per-request deadlines ride
// exactly this contract.
func testContextDeadline(t *testing.T, mk Factory) {
	bg := context.Background()
	s := mk(blob.WithCapacity(64*units.MB), blob.WithDiskMode(disk.MetadataMode))
	if err := blob.Put(bg, s, "a", 1*units.MB, nil); err != nil {
		t.Fatal(err)
	}

	// An already-expired deadline fails every entry point with
	// DeadlineExceeded. (time.Nanosecond is a constant, not a wall-clock
	// read; the Done wait is how the expiry is observed.)
	expired, cancel := context.WithTimeout(bg, time.Nanosecond)
	defer cancel()
	<-expired.Done()
	if _, err := s.Open(expired, "a"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Open with expired ctx = %v, want DeadlineExceeded", err)
	}
	if _, err := s.Stat(expired, "a"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Stat with expired ctx = %v, want DeadlineExceeded", err)
	}
	if _, err := s.Create(expired, "b", 1*units.MB); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Create with expired ctx = %v, want DeadlineExceeded", err)
	}
	if _, err := s.Replace(expired, "a", 1*units.MB); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Replace with expired ctx = %v, want DeadlineExceeded", err)
	}
	if err := s.Delete(expired, "a"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Delete with expired ctx = %v, want DeadlineExceeded", err)
	}
	// A failed Create must not leave the key locked or half-created.
	if _, err := s.Stat(bg, "b"); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("expired Create left a visible object: %v", err)
	}

	// Deadline expires mid-stream: work done before the deadline
	// succeeds, work after it fails typed, and Abort still cleans up.
	wctx, wcancel := context.WithTimeout(bg, 250*time.Millisecond)
	defer wcancel()
	w, err := s.Replace(wctx, "a", 1*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(256*units.KB, nil); err != nil {
		t.Fatal(err)
	}
	<-wctx.Done()
	if err := w.Append(256*units.KB, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("append after deadline = %v, want DeadlineExceeded", err)
	}
	if err := w.Commit(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("commit after deadline = %v, want DeadlineExceeded", err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	// The handle is truly gone: the key accepts a new writer and the old
	// version survived.
	if err := blob.Replace(bg, s, "a", 1*units.MB, nil); err != nil {
		t.Fatalf("key still locked after aborted deadline stream: %v", err)
	}
	if info, err := s.Stat(bg, "a"); err != nil || info.Size != 1*units.MB {
		t.Fatalf("old version damaged after deadline stream: %+v, %v", info, err)
	}

	// Same for a reader: reads before the deadline succeed, reads after
	// fail typed, Close releases the handle.
	rctx, rcancel := context.WithTimeout(bg, 250*time.Millisecond)
	defer rcancel()
	r, err := s.Open(rctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAt(0, 4*units.KB); err != nil {
		t.Fatal(err)
	}
	<-rctx.Done()
	if _, err := r.ReadAll(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ReadAll after deadline = %v, want DeadlineExceeded", err)
	}
	if _, err := r.ReadAt(0, 4*units.KB); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ReadAt after deadline = %v, want DeadlineExceeded", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Fresh handles on a fresh context are unaffected.
	if _, _, err := blob.Get(bg, s, "a"); err != nil {
		t.Fatal(err)
	}
}

// testConcurrentReaders pins that many goroutines can read concurrently.
func testConcurrentReaders(t *testing.T, mk Factory) {
	ctx := context.Background()
	s := mk(blob.WithCapacity(128*units.MB), blob.WithDiskMode(disk.DataMode))
	const objects = 8
	for i := 0; i < objects; i++ {
		key := fmt.Sprintf("o%d", i)
		if err := blob.Put(ctx, s, key, 64*units.KB, payload(64*units.KB)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("o%d", (g+i)%objects)
				n, data, err := blob.Get(ctx, s, key)
				if err != nil {
					errs <- err
					return
				}
				if n != 64*units.KB || int64(len(data)) != n {
					errs <- fmt.Errorf("short read of %s: n=%d len=%d", key, n, len(data))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// testConcurrentWriters pins that goroutines writing distinct keys all
// commit and the store's accounting survives the interleaving.
func testConcurrentWriters(t *testing.T, mk Factory) {
	ctx := context.Background()
	s := mk(blob.WithCapacity(256*units.MB), blob.WithDiskMode(disk.MetadataMode))
	const writers = 12
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("w%02d", g)
			if err := blob.Put(ctx, s, key, 512*units.KB, nil); err != nil {
				errs <- fmt.Errorf("%s: %w", key, err)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.ObjectCount() != writers {
		t.Fatalf("ObjectCount = %d, want %d", s.ObjectCount(), writers)
	}
	if s.LiveBytes() != writers*512*units.KB {
		t.Fatalf("LiveBytes = %d, want %d", s.LiveBytes(), writers*512*units.KB)
	}
}

// testConcurrentMixedChurn hammers the store with mixed readers,
// replacers, and deleters; only typed, expected errors may surface.
func testConcurrentMixedChurn(t *testing.T, mk Factory) {
	ctx := context.Background()
	s := mk(blob.WithCapacity(256*units.MB), blob.WithDiskMode(disk.MetadataMode))
	const objects = 6
	for i := 0; i < objects; i++ {
		if err := blob.Put(ctx, s, fmt.Sprintf("o%d", i), 256*units.KB, nil); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				key := fmt.Sprintf("o%d", (g*7+i)%objects)
				switch g % 3 {
				case 0:
					if _, _, err := blob.Get(ctx, s, key); err != nil &&
						!errors.Is(err, blob.ErrNotFound) {
						errs <- err
						return
					}
				case 1:
					if err := blob.Replace(ctx, s, key, 256*units.KB, nil); err != nil &&
						!errors.Is(err, blob.ErrBusy) {
						errs <- err
						return
					}
				case 2:
					if err := s.Delete(ctx, key); err != nil &&
						!errors.Is(err, blob.ErrNotFound) {
						errs <- err
						return
					}
					if err := blob.Put(ctx, s, key, 256*units.KB, nil); err != nil &&
						!errors.Is(err, blob.ErrAlreadyExists) && !errors.Is(err, blob.ErrBusy) {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("unexpected error under churn: %v", err)
	}
}
