package blob

import (
	"context"
	"fmt"
)

// StreamState is the declared-size bookkeeping shared by backend
// writers. It owns the validation ladder every Append and Commit must
// pass — closed-handle, cancellation, payload-length, empty-append,
// declared-size overflow, mixed payload/metadata, short commit — so
// backends cannot drift on semantics or error precedence.
type StreamState struct {
	key      string
	size     int64 // declared total
	written  int64
	withData bool // appends carry payload bytes (fixed by the first append)
	closed   bool
}

// NewStreamState starts bookkeeping for one stream of size bytes to key.
func NewStreamState(key string, size int64) StreamState {
	return StreamState{key: key, size: size}
}

// Written returns the bytes appended so far.
func (s *StreamState) Written() int64 { return s.written }

// WithData reports whether the stream carries payload bytes.
func (s *StreamState) WithData() bool { return s.withData }

// Closed reports whether the stream was committed or aborted.
func (s *StreamState) Closed() bool { return s.closed }

// Close marks the stream committed or aborted; every later Append or
// Commit fails with ErrClosed.
func (s *StreamState) Close() { s.closed = true }

// BeginAppend validates one Append call. The caller appends only after
// a nil return and reports actual progress through NoteAppended.
func (s *StreamState) BeginAppend(ctx context.Context, n int64, data []byte) error {
	if s.closed {
		return fmt.Errorf("%w: writer for %s", ErrClosed, s.key)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if data != nil && int64(len(data)) != n {
		return fmt.Errorf("%w: data length %d != append size %d", ErrInvalidSize, len(data), n)
	}
	if n <= 0 {
		return fmt.Errorf("%w: empty append to %s", ErrInvalidSize, s.key)
	}
	if s.written+n > s.size {
		return fmt.Errorf("%w: appending %d bytes past declared size %d of %s",
			ErrInvalidSize, n, s.size, s.key)
	}
	if s.written == 0 {
		s.withData = data != nil
	} else if (data != nil) != s.withData {
		return fmt.Errorf("%w: stream to %s mixes payload and metadata-only appends",
			ErrInvalidSize, s.key)
	}
	return nil
}

// NoteAppended records n appended bytes.
func (s *StreamState) NoteAppended(n int64) { s.written += n }

// BeginCommit validates a Commit call: the stream must be open, live,
// and complete to the declared size.
func (s *StreamState) BeginCommit(ctx context.Context) error {
	if s.closed {
		return fmt.Errorf("%w: writer for %s", ErrClosed, s.key)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.written != s.size {
		return fmt.Errorf("%w: committed %d of %d declared bytes to %s",
			ErrInvalidSize, s.written, s.size, s.key)
	}
	return nil
}
