#!/usr/bin/env python3
"""Validate a fragbench -report JSON file against the v2 schema.

Usage: validate_report.py report.json [expected-experiment-id ...]

Checks the envelope (schema tag, timestamp, experiments array), every
table (parallel X/Y arrays), every phase's required time_unit tag
(virtual_ns for sim phases, wall_ns for network-service phases), and
every phase histogram (required quantile fields, ordering
p50 <= p90 <= p99 <= p999 <= max). When experiment ids are given, each
must be present, error-free, and carry at least one phase with at
least one latency histogram — the contract the observability wiring
promises for instrumented experiments.
"""
import json
import sys

HIST_FIELDS = ("count", "mean_ns", "min_ns", "p50_ns", "p90_ns", "p99_ns", "p999_ns", "max_ns")
TIME_UNITS = ("virtual_ns", "wall_ns")
SCHEMA = "fragbench-report/v2"


def fail(msg):
    print(f"validate_report: {msg}", file=sys.stderr)
    sys.exit(1)


def check_hist(where, h):
    for f in HIST_FIELDS:
        if f not in h:
            fail(f"{where}: histogram missing field {f!r}")
    if h["count"] <= 0:
        fail(f"{where}: zero-count histogram should have been dropped")
    q = [h["p50_ns"], h["p90_ns"], h["p99_ns"], h["p999_ns"], h["max_ns"]]
    if any(a > b for a, b in zip(q, q[1:])):
        fail(f"{where}: quantiles not monotone: {q}")
    if not (h["min_ns"] <= h["p50_ns"] and h["p999_ns"] <= h["max_ns"]):
        fail(f"{where}: quantiles outside [min, max]")


def check_table(where, t):
    if "title" not in t:
        fail(f"{where}: table missing title")
    for s in t.get("series") or []:
        xs, ys = s.get("x") or [], s.get("y") or []
        if len(xs) != len(ys):
            fail(f"{where}/{t['title']}/{s.get('name')}: x/y length mismatch "
                 f"({len(xs)} vs {len(ys)})")


def main():
    if len(sys.argv) < 2:
        fail("usage: validate_report.py report.json [experiment-id ...]")
    path, want_ids = sys.argv[1], sys.argv[2:]
    with open(path) as f:
        doc = json.load(f)

    if doc.get("schema") != SCHEMA:
        fail(f"schema = {doc.get('schema')!r}, want {SCHEMA!r}")
    if not doc.get("created_at"):
        fail("created_at missing")
    exps = doc.get("experiments")
    if not isinstance(exps, list) or not exps:
        fail("experiments missing or empty")

    by_id = {}
    for e in exps:
        if "id" not in e:
            fail("experiment without id")
        by_id[e["id"]] = e
        for t in e.get("tables") or []:
            check_table(e["id"], t)
        for p in e.get("phases") or []:
            if not p.get("name"):
                fail(f"{e['id']}: phase without name")
            if p.get("time_unit") not in TIME_UNITS:
                fail(f"{e['id']}/{p['name']}: time_unit = {p.get('time_unit')!r}, "
                     f"want one of {TIME_UNITS}")
            for name, h in (p.get("histograms") or {}).items():
                check_hist(f"{e['id']}/{p['name']}/{name}", h)

    for want in want_ids:
        e = by_id.get(want)
        if e is None:
            fail(f"experiment {want!r} missing from report")
        if e.get("error"):
            fail(f"experiment {want!r} failed: {e['error']}")
        hists = sum(len(p.get("histograms") or {}) for p in e.get("phases") or [])
        if not hists:
            fail(f"experiment {want!r} has no latency histograms — obs wiring broken")

    n_phases = sum(len(e.get('phases') or []) for e in exps)
    print(f"validate_report: OK — {len(exps)} experiments, {n_phases} phases")


if __name__ == "__main__":
    main()
