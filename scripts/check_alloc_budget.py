#!/usr/bin/env python3
"""Check the k=256 executor-stream benchmark against an alloc budget.

Reads `go test -bench BenchmarkExecutorStreams/k=256 -benchmem` output on
stdin and fails when heap allocations per *executed operation* exceed the
budget given as argv[1]. The benchmark reports allocs/op per benchmark
iteration (one whole bulk-load + churn arm, ~90k ops), so the per-op
figure is derived from its ns/op and ns/op-executed metrics.
"""
import re
import sys


def main() -> int:
    budget = float(sys.argv[1])
    for line in sys.stdin:
        if "BenchmarkExecutorStreams/k=256" not in line:
            continue
        metrics = {unit: float(val) for val, unit in re.findall(r"([\d.e+]+)\s+(\S+)", line)}
        try:
            executed = metrics["ns/op"] / metrics["ns/op-executed"]
            per_op = metrics["allocs/op"] / executed
        except (KeyError, ZeroDivisionError) as e:
            print(f"check_alloc_budget: metrics missing from bench line: {e}", file=sys.stderr)
            return 1
        print(f"k=256: {per_op:.2f} allocs per executed op (budget {budget})")
        if per_op > budget:
            print(f"check_alloc_budget: FAIL: {per_op:.2f} > {budget}", file=sys.stderr)
            return 1
        return 0
    print("check_alloc_budget: no k=256 bench line found on stdin", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
