// Read cache: wrap any blob.Store — here a filesystem volume — in the
// internal/cache layer and watch the read path split in two: hot
// objects served from memory at memory-bandwidth virtual cost, the
// cold tail still paying one disk request per physically contiguous
// fragment. Write-through invalidation keeps the Reader version-pinning
// contract exact: a replace through the cache kills both the cached
// entry and every pinned reader of the dead version.
//
// Run with:
//
//	go run ./examples/readcache
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/internal/blob"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/units"
	"repro/internal/vclock"
)

func main() {
	ctx := context.Background()

	// A 256 MB simulated volume with an 8 MB memory cache above it.
	inner, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(256*units.MB), blob.WithDiskMode(disk.DataMode))
	if err != nil {
		log.Fatal(err)
	}
	store, err := cache.New(inner, cache.WithCapacity(8*units.MB))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %s store behind an %s cache\n\n",
		store.Name(), units.FormatBytes(store.CapacityBytes()),
		units.FormatBytes(store.Capacity()))

	// Store a handful of 1 MB objects through the ordinary surface.
	payload := make([]byte, units.MB)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("img-%04d.jpg", i)
		if err := blob.Put(ctx, store, key, int64(len(payload)), payload); err != nil {
			log.Fatal(err)
		}
	}

	// First read: a miss — full per-fragment disk cost, then the object
	// is resident. Second read: a hit at memory speed.
	readTimed := func(key string) float64 {
		w := vclock.StartWatch(store.Clock())
		if _, _, err := blob.Get(ctx, store, key); err != nil {
			log.Fatal(err)
		}
		return w.Seconds() * 1000
	}
	cold := readTimed("img-0000.jpg")
	warm := readTimed("img-0000.jpg")
	fmt.Printf("cold read: %.3f ms of virtual time (disk, per-fragment)\n", cold)
	fmt.Printf("warm read: %.3f ms of virtual time (memory)  -> %.0fx faster\n\n", warm, cold/warm)

	// An 8 MB budget holds 8 of these objects: loop over all 16 and the
	// LRU evicts; the ledger shows the churn.
	for round := 0; round < 2; round++ {
		for i := 0; i < 16; i++ {
			if _, _, err := blob.Get(ctx, store, fmt.Sprintf("img-%04d.jpg", i)); err != nil {
				log.Fatal(err)
			}
		}
	}
	st := store.CacheStats()
	fmt.Printf("after cycling 16 objects through an 8-object budget:\n")
	fmt.Printf("  %d hits, %d misses (%.0f%% hit rate), %d evictions, %s resident\n\n",
		st.Hits, st.Misses, st.HitRate()*100, st.Evictions, units.FormatBytes(st.ResidentBytes))

	// Version pinning survives the cache: open a reader served from
	// memory, replace the object through the cache, and the pinned
	// reader dies with the typed sentinel instead of serving dead bytes.
	r, err := store.Open(ctx, "img-0000.jpg")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := r.ReadAll(); err != nil {
		log.Fatal(err)
	}
	if err := blob.Replace(ctx, store, "img-0000.jpg", int64(len(payload)), payload); err != nil {
		log.Fatal(err)
	}
	if _, err := r.ReadAll(); errors.Is(err, blob.ErrNotFound) {
		fmt.Println("replace through the cache: pinned reader fails blob.ErrNotFound, never the dead version")
	} else {
		log.Fatalf("pinned reader = %v, want ErrNotFound", err)
	}
	_ = r.Close()

	fmt.Println("\nvirtual time consumed:", fmt.Sprintf("%.2f ms", store.Clock().Seconds()*1000))
	fmt.Println("run `go run ./cmd/fragbench readcache -cache 0,64M,256M` for the capacity sweep")
}
