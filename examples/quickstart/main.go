// Quickstart: store, read, safely replace, and delete large objects on
// both repository backends, then compare what the paper's folklore (§3.1)
// predicts with what the virtual clock actually measured.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/frag"
	"repro/internal/units"
	"repro/internal/vclock"
)

func main() {
	// A repository is a simple get/put store (§4). Build one over the
	// NTFS-analog filesystem and one over the SQL-Server-analog database,
	// each on its own simulated 1 GB drive. DataMode retains payloads so
	// reads return real bytes.
	fsStore := core.NewFileStore(vclock.New(), core.FileStoreOptions{
		Capacity: 1 * units.GB,
		DiskMode: disk.DataMode,
	})
	dbStore := core.NewDBStore(vclock.New(), core.DBStoreOptions{
		Capacity: 1 * units.GB,
		DiskMode: disk.DataMode,
	})

	for _, repo := range []core.Repository{fsStore, dbStore} {
		fmt.Printf("--- %s backend ---\n", repo.Name())

		// Put: store a 256 KB object.
		photo := make([]byte, 256*units.KB)
		for i := range photo {
			photo[i] = byte(i % 251)
		}
		if err := repo.Put("vacation.jpg", int64(len(photo)), photo); err != nil {
			log.Fatal(err)
		}

		// Get: read it back.
		n, data, err := repo.Get("vacation.jpg")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read %s back (%d bytes, first byte %d)\n",
			"vacation.jpg", n, data[0])

		// Replace: a safe write — the old version survives any crash
		// before the operation commits (§4).
		edited := append([]byte(nil), photo...)
		edited[0] = 0xFF
		if err := repo.Replace("vacation.jpg", int64(len(edited)), edited); err != nil {
			log.Fatal(err)
		}
		_, data, _ = repo.Get("vacation.jpg")
		fmt.Printf("after safe replace, first byte = %#x\n", data[0])

		// Fragmentation analysis: how is the object laid out on disk?
		rep := frag.Analyze(repo)
		fmt.Printf("layout: %s\n", rep)

		// The virtual clock has been charging every seek, rotation,
		// transfer and CPU cost along the way.
		fmt.Printf("virtual time consumed: %.2f ms\n\n",
			repo.Clock().Seconds()*1000)

		if err := repo.Delete("vacation.jpg"); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("folklore check (§3.1): database wins small objects, filesystem wins large —")
	fmt.Println("run `go run ./cmd/fragbench fig1` to see where the break-even point sits.")
}
