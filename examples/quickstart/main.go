// Quickstart: store, read, safely replace, and delete large objects on
// both store backends through the streaming blob.Store API, then compare
// what the paper's folklore (§3.1) predicts with what the virtual clock
// actually measured.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/frag"
	"repro/internal/units"
	"repro/internal/vclock"
)

func main() {
	ctx := context.Background()

	// A store is a simple get/put abstraction (§4). Build one over the
	// NTFS-analog filesystem and one over the SQL-Server-analog database,
	// each on its own simulated 1 GB drive, using functional options.
	// DataMode retains payloads so reads return real bytes.
	fsStore, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(1*units.GB),
		blob.WithDiskMode(disk.DataMode),
	)
	if err != nil {
		log.Fatal(err)
	}
	dbStore, err := core.NewDBStore(vclock.New(),
		blob.WithCapacity(1*units.GB),
		blob.WithDiskMode(disk.DataMode),
	)
	if err != nil {
		log.Fatal(err)
	}

	for _, store := range []blob.Store{fsStore, dbStore} {
		fmt.Printf("--- %s backend ---\n", store.Name())

		// Create: stream a 256 KB object in. Appends flow to the
		// allocator in request-sized chunks; nothing is visible until
		// Commit.
		photo := make([]byte, 256*units.KB)
		for i := range photo {
			photo[i] = byte(i % 251)
		}
		w, err := store.Create(ctx, "vacation.jpg", int64(len(photo)))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := w.Write(photo); err != nil {
			log.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			log.Fatal(err)
		}

		// Open: read it back, whole and ranged. The ranged read touches
		// only the fragments covering the requested bytes.
		r, err := store.Open(ctx, "vacation.jpg")
		if err != nil {
			log.Fatal(err)
		}
		data, err := r.ReadAll()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read %s back (%d bytes, first byte %d)\n",
			"vacation.jpg", r.Size(), data[0])
		tail, err := r.ReadAt(r.Size()-4*units.KB, 4*units.KB)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ranged read of the final 4 KB (last byte %d)\n", tail[len(tail)-1])
		r.Close()

		// Replace: a safe write — the old version survives any crash or
		// abort before Commit (§4).
		edited := append([]byte(nil), photo...)
		edited[0] = 0xFF
		if err := blob.Replace(ctx, store, "vacation.jpg", int64(len(edited)), edited); err != nil {
			log.Fatal(err)
		}
		_, data, _ = blob.Get(ctx, store, "vacation.jpg")
		fmt.Printf("after safe replace, first byte = %#x\n", data[0])

		// Failures are typed: dispatch with errors.Is, never by message.
		if _, err := store.Open(ctx, "no-such-object"); errors.Is(err, blob.ErrNotFound) {
			fmt.Println("missing objects report blob.ErrNotFound")
		}

		// Fragmentation analysis: how is the object laid out on disk?
		rep := frag.Analyze(store)
		fmt.Printf("layout: %s\n", rep)

		// The virtual clock has been charging every seek, rotation,
		// transfer and CPU cost along the way.
		fmt.Printf("virtual time consumed: %.2f ms\n\n",
			store.Clock().Seconds()*1000)

		if err := store.Delete(ctx, "vacation.jpg"); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("folklore check (§3.1): database wins small objects, filesystem wins large —")
	fmt.Println("run `go run ./cmd/fragbench fig1` to see where the break-even point sits.")
}
