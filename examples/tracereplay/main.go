// Trace replay: record a real workload as an operation log, write it to
// disk in the v2 trace format, then replay the SAME log two ways — as
// one sequential stream (k=1, reproducing the recorded layout exactly)
// and as 8 concurrent writer streams through the shared
// workload.Executor — and print what interleaving alone does to
// fragmentation. This is the §6 measurement driven by a recorded log
// instead of synthetic churn.
//
// Run with:
//
//	go run ./examples/tracereplay
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/frag"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vclock"
	"repro/internal/workload"
)

func newStore() blob.Store {
	s, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(256*units.MB), blob.WithDiskMode(disk.MetadataMode))
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func main() {
	ctx := context.Background()

	// 1. Record: drive the classic churn workload through a Recorder.
	// Every committed mutation and completed read lands in the log.
	origin := newStore()
	rec := trace.NewRecorder(origin)
	runner := workload.NewRunner(rec, workload.Constant{Size: 1 * units.MB}, 42)
	if _, err := runner.BulkLoad(0.5); err != nil {
		log.Fatal(err)
	}
	if _, err := runner.ChurnToAge(3, workload.ChurnOptions{ReadsPerWrite: 1}); err != nil {
		log.Fatal(err)
	}
	ops := rec.Ops()
	originFrags := frag.Analyze(origin).MeanFragments()
	fmt.Printf("recorded %d ops from a churn run (age %.1f, %.2f frags/obj)\n",
		len(ops), runner.Tracker().Age(), originFrags)

	// 2. Persist: the log round-trips through the line-oriented trace
	// format — the artifact you would ship from a production system.
	path := filepath.Join(os.TempDir(), "tracereplay-example.trace")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.Write(f, ops); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("wrote %s (%s)\n\n", path, units.FormatBytes(fi.Size()))

	// 3. Replay sequentially, STREAMING the log from disk — the Source
	// never materializes it. One stream preserves the recorded
	// allocation order, so the layout reproduces exactly.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	solo := newStore()
	res, err := trace.ReplaySources(ctx, solo, []*trace.Source{trace.NewSource(f)})
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	soloFrags := frag.Analyze(solo).MeanFragments()
	fmt.Printf("replay k=1: %d ops, %.2f MB/s write, %.2f frags/obj (recorded run had %.2f)\n",
		res.Ops, res.WriteMBps, soloFrags, originFrags)

	// 4. Replay the SAME log as 8 concurrent writer streams: Partition
	// routes each key's ops to one stream (per-key order survives), the
	// Executor interleaves the streams' appends in allocation order.
	parts := trace.Partition(ops, 8)
	inter := newStore()
	res, err = trace.ReplayStreams(ctx, inter, parts)
	if err != nil {
		log.Fatal(err)
	}
	interFrags := frag.Analyze(inter).MeanFragments()
	fmt.Printf("replay k=8: %d ops, %.2f MB/s write, %.2f frags/obj\n\n",
		res.Ops, res.WriteMBps, interFrags)

	fmt.Printf("interleaving delta on the same log: %+.2f frags/obj (%+.0f%%)\n",
		interFrags-soloFrags, 100*(interFrags-soloFrags)/soloFrags)
	fmt.Println("\nrun `go run ./cmd/fragbench -streams 1,4,16 tracereplay` for the full sweep")
	_ = os.Remove(path)
}
