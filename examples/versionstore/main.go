// Versionstore: a SharePoint/WebDAV-style document archive doing
// whole-object replacement (§1: "typical archives either store multiple
// versions of the objects ... or simply do wholesale replacement").
//
// A working set of office documents is edited continuously; every save
// is a safe-write replacement. The example runs the same archive on both
// backends, measures storage age as the paper defines it ("safe writes
// per object", §4.4), and prints the read-throughput trajectory — a
// miniature of the paper's headline break-even experiment, using the
// 256 KB - 1 MB range where storage age decides the winner (§6).
//
// Run with:
//
//	go run ./examples/versionstore
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/frag"
	"repro/internal/units"
	"repro/internal/vclock"
	"repro/internal/workload"
)

func main() {
	const docSize = 512 * units.KB // squarely inside the contested range

	fmt.Println("document archive: 512KB documents, safe-write saves, 2GB volumes")
	fmt.Println()
	fmt.Println("backend     age   MB/s(read)  frags/doc")

	type point struct{ age, mbps, frags float64 }
	results := map[string][]point{}

	for _, mk := range []func() (blob.Store, error){
		func() (blob.Store, error) {
			return core.NewDBStore(vclock.New(),
				blob.WithCapacity(2*units.GB), blob.WithDiskMode(disk.MetadataMode))
		},
		func() (blob.Store, error) {
			return core.NewFileStore(vclock.New(),
				blob.WithCapacity(2*units.GB), blob.WithDiskMode(disk.MetadataMode),
				blob.WithWriteRequestSize(64*units.KB))
		},
	} {
		repo, err := mk()
		if err != nil {
			log.Fatal(err)
		}
		runner := workload.NewRunner(repo, workload.Constant{Size: docSize}, 11)
		if _, err := runner.BulkLoad(0.5); err != nil {
			log.Fatal(err)
		}
		for _, age := range []float64{0, 1, 2, 3, 4} {
			if age > 0 {
				if _, err := runner.ChurnToAge(age, workload.ChurnOptions{ReadsPerWrite: 1}); err != nil {
					log.Fatal(err)
				}
			}
			res, err := runner.MeasureReadThroughput(150)
			if err != nil {
				log.Fatal(err)
			}
			fr := frag.Analyze(repo).MeanFragments()
			fmt.Printf("%-10s %4.0f   %9.2f   %8.2f\n", repo.Name(), age, res.MBps, fr)
			results[repo.Name()] = append(results[repo.Name()], point{age, res.MBps, fr})
		}
		fmt.Println()
	}

	// Where does the archive's break-even land?
	db, fs := results["database"], results["filesystem"]
	crossed := false
	for i := range db {
		if db[i].mbps < fs[i].mbps {
			fmt.Printf("=> at storage age %.0f the filesystem overtakes the database for 512KB documents\n", db[i].age)
			crossed = true
			break
		}
	}
	if !crossed {
		fmt.Println("=> the database held its lead for 512KB documents over this horizon")
	}
	fmt.Println("   (§6: \"Between 256KB and 1MB, storage age determines which system performs better.\")")

	// Demonstrate per-document version history retention as WebDAV would:
	// keep the last 3 versions of one hot document by key suffix.
	ctx := context.Background()
	repo, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(256*units.MB), blob.WithDiskMode(disk.DataMode))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for v := 1; v <= 5; v++ {
		body := make([]byte, 64*units.KB)
		rng.Read(body)
		key := fmt.Sprintf("budget.xls;v%d", v)
		if err := blob.Put(ctx, repo, key, int64(len(body)), body); err != nil {
			log.Fatal(err)
		}
		if v > 3 {
			if err := repo.Delete(ctx, fmt.Sprintf("budget.xls;v%d", v-3)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("\nversioned store keeps %d live versions of budget.xls (WebDAV-style, §1)\n", repo.ObjectCount())
}
