// PVR: a personal video recorder — one of the paper's motivating
// applications that "continuously allocate and delete large, transient
// objects" (§1).
//
// The recorder cycles through days of programming: every day it records
// new shows (large objects appended in 64 KB requests, final size
// unknown until the broadcast ends — exactly the allocation pattern
// §5.4 blames for fragmentation) and expires the oldest recordings to
// stay under quota. The example tracks fragmentation and effective
// playback (read) throughput as the volume ages, then runs the online
// defragmenter and shows both its benefit and its cost (§6 warns the
// impact "can outweigh its benefits").
//
// Run with:
//
//	go run ./examples/pvr
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/frag"
	"repro/internal/units"
	"repro/internal/vclock"
)

const (
	volumeSize  = 8 * units.GB
	quotaBytes  = 6 * units.GB // recordings kept on disk (75% full)
	days        = 30
	showsPerDay = 16
)

func main() {
	ctx := context.Background()
	store, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(volumeSize),
		blob.WithDiskMode(disk.MetadataMode),
		blob.WithWriteRequestSize(64*units.KB),
		blob.WithoutOwnerMap(),
	)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	type recording struct {
		key  string
		size int64
	}
	var library []recording
	var live int64
	showID := 0

	record := func(day int) {
		for s := 0; s < showsPerDay; s++ {
			// A show is 15-60 virtual minutes at ~4 Mb/s: 28-112 MB.
			size := (28 + rng.Int63n(85)) * units.MB
			// Expire oldest recordings until the new one fits the quota.
			for live+size > quotaBytes && len(library) > 0 {
				old := library[0]
				library = library[1:]
				if err := store.Delete(ctx, old.key); err != nil {
					log.Fatalf("expire: %v", err)
				}
				live -= old.size
			}
			key := fmt.Sprintf("show-%05d.ts", showID)
			showID++
			// A broadcast streams in 64 KB requests with the final size
			// unknown to the allocator until the recording commits —
			// exactly the §5.4 allocation pattern.
			w, err := store.Create(ctx, key, size)
			if err != nil {
				log.Fatalf("record day %d: %v", day, err)
			}
			if err := w.Append(size, nil); err != nil {
				log.Fatalf("record day %d: %v", day, err)
			}
			if err := w.Commit(); err != nil {
				log.Fatalf("record day %d: %v", day, err)
			}
			library = append(library, recording{key, size})
			live += size
		}
	}

	playbackMBps := func(samples int) float64 {
		w := store.Clock().Seconds()
		var bytes int64
		for i := 0; i < samples; i++ {
			r := library[rng.Intn(len(library))]
			n, _, err := blob.Get(ctx, store, r.key)
			if err != nil {
				log.Fatalf("playback: %v", err)
			}
			bytes += n
		}
		return float64(bytes) / float64(units.MB) / (store.Clock().Seconds() - w)
	}

	fmt.Println("day  recordings  fragments/show  playback MB/s")
	for day := 1; day <= days; day++ {
		record(day)
		if day%5 == 0 || day == 1 {
			rep := frag.Analyze(store)
			fmt.Printf("%3d  %10d  %14.2f  %13.1f\n",
				day, len(library), rep.MeanFragments(), playbackMBps(20))
		}
	}

	// A month in: defragment online and weigh the cost against the win.
	before := frag.Analyze(store).MeanFragments()
	t0 := store.Clock().Seconds()
	repDefrag := store.Volume().Defragment(0)
	defragCost := store.Clock().Seconds() - t0
	after := frag.Analyze(store).MeanFragments()
	fmt.Printf("\ndefragmenter: %d files moved, %s rewritten, %.1f -> %.1f fragments/show, %.1f virtual seconds spent\n",
		repDefrag.FilesMoved, units.FormatBytes(repDefrag.BytesMoved), before, after, defragCost)
	fmt.Printf("post-defrag playback: %.1f MB/s\n", playbackMBps(20))
	fmt.Println("\n§6: \"defragmentation may require additional application logic and imposes")
	fmt.Println("read/write performance impacts that can outweigh its benefits.\"")
}
