// Photoshare: a photo-sharing web service in the style the paper's
// introduction motivates — grouped uploads and grouped deletions.
//
// Section 3.2 observes that "pictures shared for an event are often
// uploaded and later deleted as a group" and that "using a large,
// contiguous region for a collection of related allocations tends to
// preserve the contiguous region for eventual reuse". This example
// uploads albums as groups, deletes whole albums, and shows how the two
// backends' free space and fragmentation respond — and why random
// (uncorrelated) churn, which the paper's main workload uses, is the
// harder case.
//
// Run with:
//
//	go run ./examples/photoshare
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/frag"
	"repro/internal/units"
	"repro/internal/vclock"
)

const (
	albums         = 24
	photosPerAlbum = 48
	photoSize      = 512 * units.KB // a 2006-era camera JPEG
)

func albumKey(album, photo int) string {
	return fmt.Sprintf("album-%03d/img-%04d.jpg", album, photo)
}

func uploadAlbum(ctx context.Context, repo blob.Store, album int) {
	for p := 0; p < photosPerAlbum; p++ {
		if err := blob.Put(ctx, repo, albumKey(album, p), photoSize, nil); err != nil {
			log.Fatalf("upload: %v", err)
		}
	}
}

func deleteAlbum(ctx context.Context, repo blob.Store, album int) {
	for p := 0; p < photosPerAlbum; p++ {
		if err := repo.Delete(ctx, albumKey(album, p)); err != nil {
			log.Fatalf("delete: %v", err)
		}
	}
}

func main() {
	ctx := context.Background()
	for _, mk := range []func() (blob.Store, error){
		func() (blob.Store, error) {
			return core.NewFileStore(vclock.New(),
				blob.WithCapacity(2*units.GB), blob.WithDiskMode(disk.MetadataMode),
				blob.WithWriteRequestSize(64*units.KB))
		},
		func() (blob.Store, error) {
			return core.NewDBStore(vclock.New(),
				blob.WithCapacity(2*units.GB), blob.WithDiskMode(disk.MetadataMode))
		},
	} {
		repo, err := mk()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s backend ---\n", repo.Name())

		// Event season: every album uploaded as one contiguous burst.
		for a := 0; a < albums; a++ {
			uploadAlbum(ctx, repo, a)
		}
		fmt.Printf("uploaded %d albums (%d photos, %s): %.2f fragments/object\n",
			albums, albums*photosPerAlbum,
			units.FormatBytes(int64(albums*photosPerAlbum)*photoSize),
			frag.Analyze(repo).MeanFragments())

		// Grouped deletion: whole albums expire together. Temporal
		// clustering means each deletion releases one large contiguous
		// region (§3.2).
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < albums/2; i++ {
			deleteAlbum(ctx, repo, i*2) // every other album
		}
		// Re-upload new events into the reclaimed space.
		for i := 0; i < albums/2; i++ {
			uploadAlbum(ctx, repo, albums+i)
		}
		grouped := frag.Analyze(repo).MeanFragments()
		fmt.Printf("after grouped delete + re-upload: %.2f fragments/object\n", grouped)

		// Now the uncorrelated case the paper's main workload models:
		// individual photos replaced at random ("safe writes").
		keys := repo.Keys()
		for op := 0; op < len(keys); op++ {
			k := keys[rng.Intn(len(keys))]
			if err := blob.Replace(ctx, repo, k, photoSize, nil); err != nil {
				log.Fatalf("replace: %v", err)
			}
		}
		random := frag.Analyze(repo).MeanFragments()
		fmt.Printf("after one generation of random replacement: %.2f fragments/object\n", random)
		if random > grouped {
			fmt.Println("=> uncorrelated churn fragments more than grouped churn, as §3.2 predicts")
		}
		fmt.Println()
	}
}
