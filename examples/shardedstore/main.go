// Sharded store: compose several simulated volumes — even a mixed
// filesystem/database fleet — into one blob.Store that routes keys with
// rendezvous hashing, then watch the per-shard stats the aggregated
// snapshot reports. This is the multi-volume regime production blob
// services scale in, where the paper's Figure 6 makes each shard's free
// pool the variable to watch.
//
// Run with:
//
//	go run ./examples/shardedstore
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/shard"
	"repro/internal/units"
	"repro/internal/vclock"
)

func main() {
	ctx := context.Background()

	// Four shards on one shared virtual clock: three filesystem volumes
	// and one database engine, 64 MB each. Children must share the clock
	// so aggregate timing stays coherent (shard.New enforces it).
	clock := vclock.New()
	opts := []blob.Option{
		blob.WithCapacity(64 * units.MB),
		blob.WithDiskMode(disk.DataMode),
	}
	children := make([]blob.Store, 0, 4)
	for i := 0; i < 3; i++ {
		c, err := core.NewFileStore(clock, opts...)
		if err != nil {
			log.Fatal(err)
		}
		children = append(children, c)
	}
	dbChild, err := core.NewDBStore(clock, opts...)
	if err != nil {
		log.Fatal(err)
	}
	children = append(children, dbChild)
	store, err := shard.New(children...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %s total capacity across %d shards\n\n",
		store.Name(), units.FormatBytes(store.CapacityBytes()), store.NumShards())

	// Writes go through the ordinary blob.Store surface; the router
	// decides which shard owns each key. Rendezvous hashing means a
	// future fifth shard would steal only ~1/5 of these keys.
	payload := make([]byte, 512*units.KB)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("album-%02d/img-%04d.jpg", i%5, i)
		if err := blob.Put(ctx, store, key, int64(len(payload)), payload); err != nil {
			log.Fatal(err)
		}
		if i < 4 {
			fmt.Printf("%-24s -> shard %d\n", key, store.ShardFor(key))
		}
	}
	fmt.Println("...")

	// Reads and safe replaces route the same way.
	if _, data, err := blob.Get(ctx, store, "album-00/img-0000.jpg"); err != nil || data[0] != 0 {
		log.Fatalf("read back: %v", err)
	}
	if err := blob.Replace(ctx, store, "album-00/img-0000.jpg",
		int64(len(payload)), payload); err != nil {
		log.Fatal(err)
	}

	// An object must fit one shard, not the fleet: a put bigger than any
	// single 64 MB volume fails with the usual typed sentinel even
	// though 256 MB of aggregate space exists.
	if err := blob.Put(ctx, store, "oversized.iso", 128*units.MB, nil); !errors.Is(err, blob.ErrNoSpaceLeft) {
		log.Fatalf("oversized put = %v, want ErrNoSpaceLeft", err)
	}
	fmt.Println("\n128M put over 64M shards fails with blob.ErrNoSpaceLeft: objects never span shards")

	// The aggregated snapshot fans per-shard analysis out in parallel:
	// live/retired bytes, free pool, fragments, occupancy — the stats a
	// capacity planner watches per volume.
	snap := store.Snapshot()
	fmt.Printf("\nsnapshot: %d objects, %s live, %s retired, %.2f frags/obj, imbalance (CV) %.2f\n",
		snap.Objects, units.FormatBytes(snap.LiveBytes),
		units.FormatBytes(snap.RetiredBytes), snap.MeanFragments, snap.LiveImbalance)
	for _, si := range snap.Shards {
		fmt.Printf("  %s (%.0f%% full, %.0f free objects of 512K)\n",
			si, si.Occupancy()*100, si.FreePoolObjects(512*units.KB))
	}

	fmt.Println("\nvirtual time consumed:", fmt.Sprintf("%.2f ms", store.Clock().Seconds()*1000))
	fmt.Println("run `go run ./cmd/fragbench shard` for the full shard-count sweep")
}
